package scenario

import (
	"fmt"
	"testing"
	"time"

	"circuitstart/internal/faults"
	"circuitstart/internal/netem"
	"circuitstart/internal/sim"
	"circuitstart/internal/units"
	"circuitstart/internal/workload"
)

// shardedChurnScenario is the determinism workhorse: a generated
// population on an 8-switch ring (so an 8-way partition is real, not
// degenerate), with every dynamic feature the sharded engine supports
// turned on at once — churn arrivals, a scheduled teardown, relay
// fail/recover with rebuild, burst loss, jitter, a flap, a trunk
// partition, a slow-degrade, and TrainSize > 1.
func shardedChurnScenario(shards int) Scenario {
	bp := workload.DefaultBackboneParams(24, 8)
	bp.TrunkRate = units.Mbps(150)
	spec, err := workload.GenerateBackbone(bp)
	if err != nil {
		panic(err)
	}
	return Scenario{
		Name:     "sharded-churn",
		Seed:     11,
		Shards:   shards,
		Topology: Topology{Population: &bp.Relays, Fabric: &spec},
		Circuits: CircuitSet{
			Count:        6,
			Hops:         3,
			TransferSize: 300 * units.Kilobyte,
			Arrival:      Arrival{Kind: ArriveUniform, Spread: 80 * time.Millisecond},
		},
		Arms: []Arm{
			{Name: "plain"},
			{Name: "rebuild", Rebuild: true},
		},
		CircuitEvents: CircuitEvents{
			ArrivalRate:   4,
			Arrivals:      8,
			TeardownDelay: 150 * time.Millisecond,
			Teardowns:     []TeardownEvent{{At: 400 * sim.Millisecond, Index: 2}},
		},
		RelayEvents: []RelayEvent{
			{At: 500 * sim.Millisecond, Relay: workload.RelayID(3), Kind: RelayFail},
			{At: 2 * sim.Second, Relay: workload.RelayID(3), Kind: RelayRecover},
		},
		Faults: faults.Plan{
			BurstLoss: []faults.BurstLoss{{
				Relay: workload.RelayID(5), From: 100 * sim.Millisecond, Until: 3 * sim.Second,
				PGoodBad: 0.02, PBadGood: 0.1, LossBad: 0.4,
			}},
			Jitter: []faults.Jitter{{
				Relay: workload.RelayID(7), From: 100 * sim.Millisecond, Until: 3 * sim.Second,
				Amplitude: 2 * time.Millisecond, SpikeProb: 0.01, SpikeDelay: 20 * time.Millisecond,
			}},
			Flaps: []faults.Flap{{
				Relay: workload.RelayID(9), DownAt: 700 * sim.Millisecond,
				UpAfter: 200 * time.Millisecond, Repeat: 1, Every: time.Second,
			}},
			Partitions: []faults.Partition{{
				TrunkA: workload.SwitchID(0), TrunkB: workload.SwitchID(1),
				At: 900 * sim.Millisecond, HealAfter: 300 * time.Millisecond,
			}},
			Degrades: []faults.Degrade{{
				Relay: workload.RelayID(11), Mode: faults.DegradeSlow,
				At: 300 * sim.Millisecond, RateFactor: 0.25, RecoverAfter: 2 * time.Second,
			}},
		},
		TrainSize:    2,
		Horizon:      120 * sim.Second,
		Replications: 2,
	}
}

// assertShardedStatsIdentical extends assertResultsIdentical to the
// stats the sharded engine must also pin: per-trunk counters (frame for
// frame) and the churn ledger.
func assertShardedStatsIdentical(t *testing.T, a, b *Result) {
	t.Helper()
	assertResultsIdentical(t, a, b)
	for i := range a.Arms {
		an, bn := a.Arms[i].Net, b.Arms[i].Net
		if an.UnknownDst != bn.UnknownDst || an.Unroutable != bn.Unroutable || an.SchedDrops != bn.SchedDrops {
			t.Fatalf("arm %d drop counters differ: %+v vs %+v", i, an, bn)
		}
		if len(an.Trunks) != len(bn.Trunks) {
			t.Fatalf("arm %d trunk counts %d vs %d", i, len(an.Trunks), len(bn.Trunks))
		}
		for j := range an.Trunks {
			if an.Trunks[j] != bn.Trunks[j] {
				t.Fatalf("arm %d trunk %d differs: %+v vs %+v", i, j, an.Trunks[j], bn.Trunks[j])
			}
		}
		ac, bc := a.Arms[i].Churn, b.Arms[i].Churn
		if ac.Built != bc.Built || ac.TornDown != bc.TornDown || ac.Aborted != bc.Aborted ||
			ac.Rebuilt != bc.Rebuilt || ac.Rejected != bc.Rejected {
			t.Fatalf("arm %d churn differs: %+v vs %+v", i, ac, bc)
		}
		as, bs := ac.Lifetime.Sorted(), bc.Lifetime.Sorted()
		if len(as) != len(bs) {
			t.Fatalf("arm %d lifetime sample counts %d vs %d", i, len(as), len(bs))
		}
		for j := range as {
			if as[j] != bs[j] {
				t.Fatalf("arm %d lifetime sample %d: %v vs %v", i, j, as[j], bs[j])
			}
		}
	}
}

func TestShardedShardCountInvariance(t *testing.T) {
	// The tentpole contract: the same scenario is byte-identical at
	// every shard count, faults, churn and cell trains included.
	// Shards: 1 is the reference single-shard run.
	ref, err := Runner{Workers: 1}.Run(shardedChurnScenario(1))
	if err != nil {
		t.Fatal(err)
	}
	if ref.Arms[1].Churn.Rebuilt == 0 {
		t.Fatalf("rebuild arm never rebuilt a circuit — the relay failure missed every path")
	}
	done := 0
	for _, o := range ref.Arms[0].Circuits {
		if o.Done {
			done++
		}
	}
	if done == 0 {
		t.Fatalf("no transfer completed on the reference run")
	}
	for _, shards := range []int{2, 4, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			got, err := Runner{Workers: 1}.Run(shardedChurnScenario(shards))
			if err != nil {
				t.Fatal(err)
			}
			assertShardedStatsIdentical(t, ref, got)
		})
	}
}

func TestShardedWorkerCountDeterminism(t *testing.T) {
	// Worker-pool parallelism composes with shard parallelism: trials
	// are pure functions of their seeds regardless of which worker's
	// recycled arenas they run in.
	serial, err := Runner{Workers: 1}.Run(shardedChurnScenario(4))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Runner{Workers: 8}.Run(shardedChurnScenario(4))
	if err != nil {
		t.Fatal(err)
	}
	assertShardedStatsIdentical(t, serial, parallel)
}

func TestShardedLookaheadNeverViolatedUnderChurn(t *testing.T) {
	// The conservative bound, end to end: every handoff imported at a
	// barrier must land strictly ahead of the destination shard's parked
	// clock. The hook fires on the coordinator with all shards parked.
	violations := 0
	imports := 0
	netem.ShardLookaheadCheck = func(shard int, clockNow, arrival sim.Time) {
		imports++
		if !arrival.After(clockNow) {
			violations++
			t.Errorf("shard %d: handoff arrival %v not after parked clock %v", shard, arrival, clockNow)
		}
	}
	defer func() { netem.ShardLookaheadCheck = nil }()

	sc := shardedChurnScenario(4)
	sc.Replications = 1
	if _, err := (Runner{Workers: 1}).Run(sc); err != nil {
		t.Fatal(err)
	}
	if imports == 0 {
		t.Fatalf("no handoff ever crossed a shard boundary — the partition is degenerate")
	}
	if violations != 0 {
		t.Fatalf("%d of %d imports violated the lookahead bound", violations, imports)
	}
}

// TestShardedChurnRaceStress is the race-detector smoke: a high-churn
// trial over a small-lookahead fabric at 4 shards, so frames cross
// boundaries every window while relay events, faults and completions
// exercise the barrier paths. Run under -race in CI.
func TestShardedChurnRaceStress(t *testing.T) {
	bp := workload.DefaultBackboneParams(16, 4)
	bp.TrunkDelay = time.Millisecond // small lookahead: many windows
	spec, err := workload.GenerateBackbone(bp)
	if err != nil {
		t.Fatal(err)
	}
	sc := Scenario{
		Name:     "sharded-race-stress",
		Seed:     13,
		Shards:   4,
		Topology: Topology{Population: &bp.Relays, Fabric: &spec},
		Circuits: CircuitSet{
			Count:        4,
			Hops:         3,
			TransferSize: 150 * units.Kilobyte,
			Arrival:      Arrival{Kind: ArriveUniform, Spread: 40 * time.Millisecond},
		},
		Arms: []Arm{{Name: "rebuild", Rebuild: true}},
		CircuitEvents: CircuitEvents{
			ArrivalRate:   10,
			Arrivals:      10,
			TeardownDelay: 50 * time.Millisecond,
		},
		RelayEvents: []RelayEvent{
			{At: 300 * sim.Millisecond, Relay: workload.RelayID(1), Kind: RelayFail},
			{At: sim.Second, Relay: workload.RelayID(1), Kind: RelayRecover},
		},
		Faults: faults.Plan{
			Jitter: []faults.Jitter{{
				Relay: workload.RelayID(2), From: 50 * sim.Millisecond, Until: 5 * sim.Second,
				Amplitude: time.Millisecond,
			}},
		},
		Horizon:      60 * sim.Second,
		Replications: 1,
	}
	res, err := Runner{Workers: 2}.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Arms[0].Churn.Built == 0 {
		t.Fatalf("stress run built no circuits")
	}
}

func TestShardedStaticExplicitTopology(t *testing.T) {
	// The sharded engine also runs churn-free explicit-path trials; the
	// transfers must complete and the per-download TTLB must be sane.
	sc := sharedTrunkScenario(units.Mbps(40), nil)
	sc.Shards = 2
	res, err := Runner{Workers: 1}.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Arms[0].Incomplete != 0 {
		t.Fatalf("incomplete transfers: %d", res.Arms[0].Incomplete)
	}
	for _, o := range res.Arms[0].Circuits {
		if !o.Done || o.TTLB <= 0 {
			t.Fatalf("outcome %d not done or zero TTLB: %+v", o.Index, o)
		}
	}
	// Shard counts beyond the cut count collapse onto the same
	// partition, so results stay identical even at absurd counts.
	huge := sharedTrunkScenario(units.Mbps(40), nil)
	huge.Shards = 64
	res64, err := Runner{Workers: 1}.Run(huge)
	if err != nil {
		t.Fatal(err)
	}
	assertResultsIdentical(t, res, res64)
}

func TestShardedValidation(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Scenario)
	}{
		{"negative shards", func(s *Scenario) { s.Shards = -1 }},
		{"no fabric", func(s *Scenario) { s.Topology.Fabric = nil }},
		{"trunk loss", func(s *Scenario) { s.Topology.Fabric.Trunks[0].Config.LossProb = 0.01 }},
		{"client access loss", func(s *Scenario) { s.ClientAccess.LossProb = 0.01 }},
		{"link events", func(s *Scenario) {
			s.Events = []LinkEvent{{At: sim.Second, TrunkA: workload.SwitchID(0), TrunkB: workload.SwitchID(1), Rate: units.Mbps(10)}}
		}},
		{"resource limits", func(s *Scenario) { s.Arms[0].Relay.Limits.MaxCircuits = 1 }},
		{"fault recovery", func(s *Scenario) {
			s.Faults.Recovery = faults.Recovery{Enabled: true, MaxRetries: 2, RTOMax: time.Second}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sc := shardedChurnScenario(2)
			tc.mutate(&sc)
			if _, err := (Runner{Workers: 1}).Run(sc); err == nil {
				t.Fatalf("%s accepted by sharded validation", tc.name)
			}
		})
	}
}
