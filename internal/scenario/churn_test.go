package scenario

import (
	"strings"
	"testing"
	"time"

	"circuitstart/internal/core"
	"circuitstart/internal/netem"
	"circuitstart/internal/sim"
	"circuitstart/internal/units"
	"circuitstart/internal/workload"
)

// churnScenario exercises every churn mechanism at once: Poisson
// circuit arrivals over a generated population, teardown of completed
// circuits, scheduled teardowns of initial circuits, and a relay
// failure with recovery — with one Rebuild arm and one without.
func churnScenario() Scenario {
	pop := workload.DefaultRelayParams(12)
	return Scenario{
		Name:     "churn",
		Seed:     11,
		Topology: Topology{Population: &pop},
		Circuits: CircuitSet{
			Count:        4,
			TransferSize: 150 * units.Kilobyte,
			Arrival:      Arrival{Kind: ArriveUniform, Spread: 100 * time.Millisecond},
		},
		Arms: []Arm{
			{Name: "rebuild", Rebuild: true},
			{Name: "no-rebuild", Transport: core.TransportOptions{Policy: "backtap"}},
		},
		CircuitEvents: CircuitEvents{
			ArrivalRate:   10,
			Arrivals:      8,
			TeardownDelay: 50 * time.Millisecond,
			Teardowns:     []TeardownEvent{{At: 20 * sim.Millisecond, Index: 0}},
		},
		RelayEvents: []RelayEvent{
			{At: 300 * sim.Millisecond, Relay: "relay-011", Kind: RelayFail},
			{At: 2 * sim.Second, Relay: "relay-011", Kind: RelayRecover},
		},
		Horizon:      600 * sim.Second,
		Replications: 2,
	}
}

func TestChurnWorkerCountDeterminism(t *testing.T) {
	serial, err := Runner{Workers: 1}.Run(churnScenario())
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Runner{Workers: 8}.Run(churnScenario())
	if err != nil {
		t.Fatal(err)
	}
	assertResultsIdentical(t, serial, parallel)
	for i := range serial.Arms {
		sa, pa := serial.Arms[i].Churn, parallel.Arms[i].Churn
		if sa.Built != pa.Built || sa.TornDown != pa.TornDown ||
			sa.Rebuilt != pa.Rebuilt || sa.Aborted != pa.Aborted {
			t.Fatalf("arm %d churn stats differ: %+v vs %+v", i, sa, pa)
		}
		ss, ps := sa.Lifetime.Sorted(), pa.Lifetime.Sorted()
		if len(ss) != len(ps) {
			t.Fatalf("arm %d lifetime sample counts %d vs %d", i, len(ss), len(ps))
		}
		for j := range ss {
			if ss[j] != ps[j] {
				t.Fatalf("arm %d lifetime sample %d: %v vs %v", i, j, ss[j], ps[j])
			}
		}
	}
}

func TestChurnLifecycleAccounting(t *testing.T) {
	res, err := Runner{Workers: 4}.Run(churnScenario())
	if err != nil {
		t.Fatal(err)
	}
	for _, arm := range res.Arms {
		// 4 initial + 8 arrivals, 2 replications.
		if got := len(arm.Circuits); got != 24 {
			t.Fatalf("arm %q has %d outcomes, want 24", arm.Name, got)
		}
		c := arm.Churn
		if c.Built < 24 {
			t.Fatalf("arm %q built %d circuits, want ≥ 24", arm.Name, c.Built)
		}
		// Every circuit must eventually be torn down: completed ones by
		// the churn engine, survivors at collect time.
		if c.TornDown != c.Built {
			t.Fatalf("arm %q tore down %d of %d built circuits", arm.Name, c.TornDown, c.Built)
		}
		if c.Lifetime.Len() != c.TornDown {
			t.Fatalf("arm %q pooled %d lifetimes for %d teardowns", arm.Name, c.Lifetime.Len(), c.TornDown)
		}
		// The scheduled teardown at 20 ms kills initial circuit 0
		// before its 150 kB transfer can finish.
		if c.Aborted < 2 {
			t.Fatalf("arm %q aborted %d downloads, want ≥ 2 (one per replication)", arm.Name, c.Aborted)
		}
		done := 0
		for _, o := range arm.Circuits {
			if o.Done {
				done++
			}
			if o.Done && o.Aborted {
				t.Fatalf("outcome %d both done and aborted", o.Index)
			}
		}
		if done != arm.TTLB.Len() {
			t.Fatalf("arm %q: %d done outcomes but %d TTLB samples", arm.Name, done, arm.TTLB.Len())
		}
		if done == 0 {
			t.Fatalf("arm %q completed nothing", arm.Name)
		}
	}
}

func TestChurnRebuildPolicy(t *testing.T) {
	// The rebuild arm recovers downloads the relay failure killed; the
	// no-rebuild arm aborts them. relay-011 is exit-flagged and
	// top-of-population bandwidth, so it almost surely carries traffic
	// at the failure instant; tolerate the rare trial where it does
	// not by only checking the arms' invariants.
	res, err := Runner{Workers: 2}.Run(churnScenario())
	if err != nil {
		t.Fatal(err)
	}
	rebuild, plain := res.Arm("rebuild"), res.Arm("no-rebuild")
	if plain.Churn.Rebuilt != 0 {
		t.Fatalf("no-rebuild arm rebuilt %d circuits", plain.Churn.Rebuilt)
	}
	if rebuild.Churn.Rebuilt == 0 {
		t.Log("rebuild arm saw no failures crossing live circuits (timing-dependent)")
	}
	for _, o := range rebuild.Circuits {
		if o.Rebuilds > 0 && !o.Done && !o.Aborted {
			t.Fatalf("rebuilt download %d neither done nor aborted", o.Index)
		}
	}
}

func TestChurnZeroValueKeepsStaticPath(t *testing.T) {
	// A scenario whose churn fields are explicitly zero must take the
	// original static execution path and produce the identical Result —
	// the no-churn half of the adapter-equivalence guarantee.
	static := testScenario()
	churnZero := testScenario()
	churnZero.CircuitEvents = CircuitEvents{}
	churnZero.RelayEvents = nil

	a, err := Runner{Workers: 3}.Run(static)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Runner{Workers: 3}.Run(churnZero)
	if err != nil {
		t.Fatal(err)
	}
	assertResultsIdentical(t, a, b)
	for i := range a.Arms {
		if a.Arms[i].Churn.Lifetime != nil || b.Arms[i].Churn.Lifetime != nil {
			t.Fatal("static scenario grew churn aggregates")
		}
	}
	var at, bt strings.Builder
	if err := a.WriteText(&at); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteText(&bt); err != nil {
		t.Fatal(err)
	}
	if at.String() != bt.String() {
		t.Fatalf("rendered output differs:\n%s\nvs\n%s", at.String(), bt.String())
	}
	if strings.Contains(at.String(), "torn_down") {
		t.Fatal("static output grew a churn table")
	}
}

func TestChurnExplicitTopologyTeardown(t *testing.T) {
	// Scheduled teardown on an explicit topology: circuit 0 dies at
	// 50 ms mid-transfer, circuit 1 completes; both end torn down.
	relays := []RelaySpec{
		{ID: "r1", Access: netem.Symmetric(units.Mbps(50), 5*time.Millisecond, 0)},
		{ID: "r2", Access: netem.Symmetric(units.Mbps(8), 5*time.Millisecond, 0)},
	}
	sc := Scenario{
		Seed:     3,
		Topology: Topology{Relays: relays},
		Circuits: CircuitSet{
			Count:        2,
			Paths:        [][]netem.NodeID{{"r1", "r2"}},
			TransferSize: 300 * units.Kilobyte,
		},
		Arms: []Arm{{Name: "default"}},
		CircuitEvents: CircuitEvents{
			Teardowns: []TeardownEvent{{At: 50 * sim.Millisecond, Index: 0}},
		},
		Horizon: 60 * sim.Second,
	}
	res, err := Runner{Workers: 1}.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	arm := res.Arms[0]
	if !arm.Circuits[1].Done || arm.Circuits[0].Done {
		t.Fatalf("outcomes: %+v", arm.Circuits)
	}
	if !arm.Circuits[0].Aborted {
		t.Fatal("torn-down circuit not recorded as aborted")
	}
	if arm.Incomplete != 0 {
		t.Fatalf("aborted download counted as incomplete (%d)", arm.Incomplete)
	}
	if arm.Churn.TornDown != 2 || arm.Churn.Aborted != 1 {
		t.Fatalf("churn stats %+v", arm.Churn)
	}
}

// TestChurnFailureBeforeStaggeredStart pins the pending-start rebuild
// interaction: a relay failure that kills a circuit whose download has
// not started yet (its staggered start is still scheduled) must leave
// the download with exactly one transfer — started by the original
// schedule on the rebuilt circuit — not one per event.
func TestChurnFailureBeforeStaggeredStart(t *testing.T) {
	pop := workload.DefaultRelayParams(12)
	sc := Scenario{
		Name:     "fail-before-start",
		Seed:     5,
		Topology: Topology{Population: &pop},
		Circuits: CircuitSet{
			Count:        6,
			TransferSize: 150 * units.Kilobyte,
			// Starts spread across 2 s; failures at 0.5 s and 1 s land
			// before most of them.
			Arrival: Arrival{Kind: ArriveUniform, Spread: 2 * time.Second},
		},
		Arms: []Arm{{Name: "rebuild", Rebuild: true}},
		RelayEvents: []RelayEvent{
			{At: 500 * sim.Millisecond, Relay: "relay-010", Kind: RelayFail},
			{At: sim.Second, Relay: "relay-011", Kind: RelayFail},
			{At: 3 * sim.Second, Relay: "relay-010", Kind: RelayRecover},
			{At: 3 * sim.Second, Relay: "relay-011", Kind: RelayRecover},
		},
		CircuitEvents: CircuitEvents{TeardownDelay: 10 * time.Millisecond},
		Horizon:       600 * sim.Second,
	}
	res, err := Runner{Workers: 1}.Run(sc)
	if err != nil {
		t.Fatal(err) // the pre-fix engine panicked here (double Transfer)
	}
	arm := res.Arms[0]
	for _, o := range arm.Circuits {
		if !o.Done && !o.Aborted {
			t.Fatalf("download %d neither done nor aborted: %+v", o.Index, o)
		}
		if o.Done && o.StartAt == 0 && o.Rebuilds > 0 {
			t.Fatalf("rebuilt download %d has zero StartAt — TTLB measured from t=0", o.Index)
		}
	}
	if arm.TTLB.Len()+arm.Churn.Aborted != 6 {
		t.Fatalf("%d done + %d aborted, want 6 total", arm.TTLB.Len(), arm.Churn.Aborted)
	}
}

// TestChurnTeardownDelayAloneEnablesLifecycle pins the CircuitEvents
// zero-value boundary: TeardownDelay by itself must engage the
// lifecycle engine (circuits torn down after completion), not be
// silently ignored by the static path.
func TestChurnTeardownDelayAloneEnablesLifecycle(t *testing.T) {
	sc := testScenario()
	sc.Replications = 1
	sc.CircuitEvents = CircuitEvents{TeardownDelay: 10 * time.Millisecond}
	res, err := Runner{Workers: 1}.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	for _, arm := range res.Arms {
		if arm.Churn.Lifetime == nil || arm.Churn.TornDown != arm.Churn.Built {
			t.Fatalf("arm %q: lifecycle not engaged: %+v", arm.Name, arm.Churn)
		}
	}
}

func TestChurnValidation(t *testing.T) {
	pop := workload.DefaultRelayParams(8)
	base := func() Scenario {
		return Scenario{
			Seed:     1,
			Topology: Topology{Population: &pop},
			Circuits: CircuitSet{Count: 2, TransferSize: units.Kilobyte},
			Arms:     []Arm{{Name: "a"}},
			Horizon:  sim.Second,
		}
	}
	cases := []struct {
		name   string
		mutate func(*Scenario)
	}{
		{"rate without arrivals", func(s *Scenario) { s.CircuitEvents.ArrivalRate = 1 }},
		{"arrivals without rate", func(s *Scenario) { s.CircuitEvents.Arrivals = 1 }},
		{"negative rate", func(s *Scenario) { s.CircuitEvents.ArrivalRate = -1 }},
		{"negative teardown delay", func(s *Scenario) { s.CircuitEvents.TeardownDelay = -time.Second }},
		{"teardown index out of range", func(s *Scenario) {
			s.CircuitEvents.Teardowns = []TeardownEvent{{At: sim.Second, Index: 2}}
		}},
		{"teardown at zero", func(s *Scenario) {
			s.CircuitEvents.Teardowns = []TeardownEvent{{Index: 0}}
		}},
		{"relay event unknown relay", func(s *Scenario) {
			s.RelayEvents = []RelayEvent{{At: sim.Second, Relay: "relay-099", Kind: RelayFail}}
		}},
		{"relay event bad kind", func(s *Scenario) {
			s.RelayEvents = []RelayEvent{{At: sim.Second, Relay: "relay-001", Kind: RelayEventKind(9)}}
		}},
		{"relay event at zero", func(s *Scenario) {
			s.RelayEvents = []RelayEvent{{Relay: "relay-001", Kind: RelayFail}}
		}},
		{"rebuild on explicit topology", func(s *Scenario) {
			s.Topology = Topology{Relays: []RelaySpec{
				{ID: "r1", Access: netem.Symmetric(units.Mbps(10), time.Millisecond, 0)},
			}}
			s.Circuits.Paths = [][]netem.NodeID{{"r1"}}
			s.Arms = []Arm{{Name: "a", Rebuild: true}}
			s.RelayEvents = []RelayEvent{{At: sim.Second, Relay: "r1", Kind: RelayFail}}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sc := base()
			tc.mutate(&sc)
			if _, err := (Runner{Workers: 1}).Run(sc); err == nil {
				t.Fatalf("%s accepted", tc.name)
			}
		})
	}
}
