package scenario

import (
	"circuitstart/internal/netem"
	"circuitstart/internal/units"
)

// Clone returns a deep copy of the scenario: mutating the copy (its
// arms, topology, population, fabric spec, paths or event lists) never
// aliases the original. This is the mutation hook the sweep engine
// builds on — every grid point clones the base scenario and applies its
// dimension mutators to the copy, so points are independent even when
// they run concurrently.
//
// Per-value fields (seed, horizon, probes, …) copy by assignment;
// reference fields — including the Circuits.SizeDist pointer — are
// duplicated below.
func (sc Scenario) Clone() Scenario {
	out := sc
	if sc.Topology.Relays != nil {
		out.Topology.Relays = append([]RelaySpec(nil), sc.Topology.Relays...)
	}
	if sc.Topology.Population != nil {
		pop := *sc.Topology.Population
		out.Topology.Population = &pop
	}
	if sc.Topology.Fabric != nil {
		fab := sc.Topology.Fabric.Clone()
		out.Topology.Fabric = &fab
	}
	if sc.Circuits.Paths != nil {
		out.Circuits.Paths = make([][]netem.NodeID, len(sc.Circuits.Paths))
		for i, p := range sc.Circuits.Paths {
			out.Circuits.Paths[i] = append([]netem.NodeID(nil), p...)
		}
	}
	if sc.Circuits.SizeMix != nil {
		out.Circuits.SizeMix = append([]units.DataSize(nil), sc.Circuits.SizeMix...)
	}
	if sc.Circuits.SizeDist != nil {
		d := *sc.Circuits.SizeDist
		out.Circuits.SizeDist = &d
	}
	if sc.Arms != nil {
		out.Arms = append([]Arm(nil), sc.Arms...)
	}
	if sc.Events != nil {
		out.Events = append([]LinkEvent(nil), sc.Events...)
	}
	if sc.CircuitEvents.Teardowns != nil {
		out.CircuitEvents.Teardowns = append([]TeardownEvent(nil), sc.CircuitEvents.Teardowns...)
	}
	if sc.RelayEvents != nil {
		out.RelayEvents = append([]RelayEvent(nil), sc.RelayEvents...)
	}
	return out
}
