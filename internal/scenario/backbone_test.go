package scenario

import (
	"strings"
	"testing"
	"time"

	"circuitstart/internal/netem"
	"circuitstart/internal/sim"
	"circuitstart/internal/units"
	"circuitstart/internal/workload"
)

// backboneScenario is testScenario on a routed 3-switch ring instead of
// the star: generated population, pinned relays, trunk contention.
func backboneScenario(t *testing.T) Scenario {
	t.Helper()
	sc := testScenario()
	bp := workload.DefaultBackboneParams(12, 3)
	bp.TrunkRate = units.Mbps(120)
	spec, err := workload.GenerateBackbone(bp)
	if err != nil {
		t.Fatal(err)
	}
	sc.Name = "backbone-determinism"
	sc.Topology.Fabric = &spec
	return sc
}

func TestRunnerBackboneWorkerCountDeterminism(t *testing.T) {
	// The tentpole guarantee extended to GraphFabric: every trial builds
	// its own fabric from the spec, so Workers: 1 and Workers: 8 are
	// bit-identical on a routed backbone too.
	serial, err := Runner{Workers: 1}.Run(backboneScenario(t))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Runner{Workers: 8}.Run(backboneScenario(t))
	if err != nil {
		t.Fatal(err)
	}
	assertResultsIdentical(t, serial, parallel)
	for i := range serial.Arms {
		sn, pn := serial.Arms[i].Net, parallel.Arms[i].Net
		if sn.UnknownDst != pn.UnknownDst || sn.Unroutable != pn.Unroutable {
			t.Fatalf("arm %d drop counters differ across worker counts", i)
		}
		if len(sn.Trunks) != len(pn.Trunks) {
			t.Fatalf("arm %d trunk counts differ", i)
		}
		for j := range sn.Trunks {
			if sn.Trunks[j] != pn.Trunks[j] {
				t.Fatalf("arm %d trunk %d: %+v vs %+v", i, j, sn.Trunks[j], pn.Trunks[j])
			}
		}
	}
}

func TestBackboneResultSurfacesTrunkStats(t *testing.T) {
	sc := backboneScenario(t)
	sc.Replications = 1
	res, err := Runner{Workers: 2}.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	for _, arm := range res.Arms {
		if arm.Net.UnknownDst != 0 || arm.Net.Unroutable != 0 {
			t.Errorf("arm %s dropped frames: %+v", arm.Name, arm.Net)
		}
		if len(arm.Trunks()) != 6 {
			t.Fatalf("arm %s has %d trunk stats, want 6 (3-ring, both directions)", arm.Name, len(arm.Trunks()))
		}
		var delivered uint64
		for _, ts := range arm.Trunks() {
			delivered += ts.Stats.CellsDelivered
		}
		if delivered == 0 {
			t.Errorf("arm %s: no frames crossed any trunk", arm.Name)
		}
	}
	var b strings.Builder
	if err := res.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "trunk:core-00>core-01") {
		t.Errorf("summary output missing trunk stats:\n%s", b.String())
	}
}

func TestStarResultHasNoTrunkSection(t *testing.T) {
	sc := testScenario()
	sc.Replications = 1
	res, err := Runner{Workers: 2}.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	for _, arm := range res.Arms {
		if len(arm.Trunks()) != 0 {
			t.Errorf("star arm %s has trunk stats", arm.Name)
		}
	}
	var b strings.Builder
	if err := res.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "trunk") {
		t.Errorf("star summary mentions trunks:\n%s", b.String())
	}
}

// sharedTrunkScenario: one trunk between two switches, every circuit
// crosses it — the shared-bottleneck shape the star cannot express.
func sharedTrunkScenario(trunkRate units.DataRate, events []LinkEvent) Scenario {
	access := netem.Symmetric(units.Mbps(100), 2*time.Millisecond, 0)
	spec := netem.GraphSpec{
		Switches: []netem.SwitchID{"east", "west"},
		Trunks: []netem.TrunkSpec{
			{A: "west", B: "east", Config: netem.SymmetricTrunk(trunkRate, 5*time.Millisecond, 0)},
		},
		Homes: map[netem.NodeID]netem.SwitchID{
			"g1": "west", "g2": "west", "e1": "east", "e2": "east",
			"client-000": "west", "client-001": "west",
			"server-000": "east", "server-001": "east",
		},
	}
	return Scenario{
		Name: "shared-trunk",
		Seed: 3,
		Topology: Topology{
			Relays: []RelaySpec{
				{ID: "g1", Access: access}, {ID: "e1", Access: access},
				{ID: "g2", Access: access}, {ID: "e2", Access: access},
			},
			Fabric: &spec,
		},
		Circuits: CircuitSet{
			Count:        2,
			Paths:        [][]netem.NodeID{{"g1", "e1"}, {"g2", "e2"}},
			TransferSize: 100 * units.Kilobyte,
		},
		Arms:         []Arm{{Name: "default"}},
		ClientAccess: access,
		Horizon:      120 * sim.Second,
		Events:       events,
	}
}

func TestTrunkLinkEvent(t *testing.T) {
	// A trunk capacity step mid-run: the run with the step up must
	// finish no later than the constant slow-trunk run.
	slow, err := Runner{Workers: 1}.Run(sharedTrunkScenario(units.Mbps(2), nil))
	if err != nil {
		t.Fatal(err)
	}
	stepped, err := Runner{Workers: 1}.Run(sharedTrunkScenario(units.Mbps(2), []LinkEvent{
		{At: 200 * sim.Millisecond, TrunkA: "west", TrunkB: "east", Rate: units.Mbps(50)},
	}))
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range []*Result{slow, stepped} {
		if res.Arms[0].Incomplete != 0 {
			t.Fatalf("incomplete transfers: %d", res.Arms[0].Incomplete)
		}
	}
	if s, f := slow.Arms[0].TTLB.Median(), stepped.Arms[0].TTLB.Median(); f >= s {
		t.Errorf("stepped trunk median %.3fs not faster than constant slow trunk %.3fs", f, s)
	}
}

func TestTrunkEventValidation(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Scenario)
	}{
		{"trunk event without fabric", func(s *Scenario) { s.Topology.Fabric = nil }},
		{"unknown trunk", func(s *Scenario) {
			s.Events = []LinkEvent{{At: 1, TrunkA: "west", TrunkB: "ghost", Rate: units.Mbps(1)}}
		}},
		{"half-named trunk", func(s *Scenario) {
			s.Events = []LinkEvent{{At: 1, TrunkA: "west", Rate: units.Mbps(1)}}
		}},
		{"relay and trunk", func(s *Scenario) {
			s.Events = []LinkEvent{{At: 1, Relay: "g1", TrunkA: "west", TrunkB: "east", Rate: units.Mbps(1)}}
		}},
		{"neither relay nor trunk", func(s *Scenario) {
			s.Events = []LinkEvent{{At: 1, Rate: units.Mbps(1)}}
		}},
		{"zero rate", func(s *Scenario) {
			s.Events = []LinkEvent{{At: 1, TrunkA: "west", TrunkB: "east"}}
		}},
		{"invalid fabric spec", func(s *Scenario) { s.Topology.Fabric = &netem.GraphSpec{} }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sc := sharedTrunkScenario(units.Mbps(8), []LinkEvent{
				{At: 1, TrunkA: "west", TrunkB: "east", Rate: units.Mbps(16)},
			})
			tc.mutate(&sc)
			if _, err := (Runner{Workers: 1}).Run(sc); err == nil {
				t.Fatalf("%s accepted", tc.name)
			}
		})
	}
	// Trunk events on a *generated* topology with a fabric are valid.
	sc := backboneScenario(t)
	sc.Replications = 1
	sc.Events = []LinkEvent{{At: sim.Second, TrunkA: "core-00", TrunkB: "core-01", Rate: units.Mbps(40)}}
	if _, err := (Runner{Workers: 2}).Run(sc); err != nil {
		t.Fatalf("trunk event on generated backbone rejected: %v", err)
	}
}
