package scenario

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"circuitstart/internal/arena"
	"circuitstart/internal/core"
	"circuitstart/internal/directory"
	"circuitstart/internal/faults"
	"circuitstart/internal/netem"
	"circuitstart/internal/sim"
	"circuitstart/internal/units"
	"circuitstart/internal/workload"
)

// This file runs one trial on the sharded conservative-lookahead engine
// (core.ShardedNetwork). The data plane is the untouched cell pipeline,
// advanced in barrier-synchronous windows; ALL control-plane work —
// circuit builds, transfer starts, teardowns, relay failures — happens
// at barriers, where every shard clock is parked at the same instant.
//
// Determinism contract: results are byte-identical for any Shards ≥ 1.
// Three rules make that hold:
//
//  1. The barrier stride is GraphSpec.MinPositiveTrunkDelay — a bound
//     over ALL trunks, not just the cut ones — so the barrier schedule
//     does not depend on where the partition fell. The stride never
//     exceeds any plan's lookahead (the lookahead minimizes over a
//     subset), so the conservative bound holds at every shard count.
//  2. Every barrier processes its work in a fixed order over data that
//     is itself shard-count-invariant: completions in download-index
//     order, then linger teardowns, then scheduled teardowns and relay
//     events in declared order, then arrivals and pending starts in
//     instant order.
//  3. Virtual instants drive everything. Transfers start at their exact
//     arrival-process instants (scheduled build-ahead from the barrier
//     preceding the instant — no barrier can intervene in between), and
//     completion timestamps derive from the schedule instant plus the
//     transfer's measured duration, never from a barrier's position.
//
// The sharded engine is NOT byte-identical to the Shards = 0
// single-clock engine: teardowns, relay events and the early stop are
// deferred to barriers there, so lifetimes and trailing trunk stats
// shift. Shards = 1 is the reference the golden fixture pins.

// sdownload is one logical transfer tracked by the sharded engine. The
// done/doneAt/ttlb trio is written mid-window by the completing shard
// (exactly one shard ever completes a given transfer) and read only at
// barriers, after the window's WaitGroup join — the barrier is the
// happens-before edge, so no lock is needed.
type sdownload struct {
	index    int
	circuit  *core.ShardedCircuit
	startAt  sim.Time // first transfer start instant
	started  bool
	handled  bool // completion accounted at a barrier
	aborted  bool
	rejected bool
	rebuild  int

	done   bool
	doneAt sim.Time
	ttlb   time.Duration
}

// spending is a transfer start (or churn arrival) waiting for the
// barrier preceding its instant.
type spending struct {
	at sim.Time
	d  *sdownload
}

// slinger is a completed download's circuit waiting out its teardown
// linger.
type slinger struct {
	at sim.Time
	c  *core.ShardedCircuit
}

// shardedEngine drives one trial on a ShardedNetwork, both the static
// path and the dynamic circuit lifecycle (churn, relay events, faults).
type shardedEngine struct {
	sc      Scenario
	arm     Arm
	sn      *core.ShardedNetwork
	cons    *directory.Consensus // nil on explicit topologies
	access  netem.AccessConfig
	seed    int64
	churnOn bool
	stride  time.Duration // barrier stride (0 = one window to the horizon)

	pathRNG   *sim.RNG
	downloads []*sdownload
	dlSlab    *arena.Slab[sdownload] // nil without an arena
	failed    map[netem.NodeID]bool
	churn     ChurnStats

	starts       []spending // initial transfer starts, sorted (at, index)
	nextStart    int
	arrivals     []spending // churn arrivals, instant order
	nextArrival  int
	teardowns    []TeardownEvent // stable-sorted by At
	nextTeardown int
	relayEvs     []RelayEvent // stable-sorted by At
	nextRelayEv  int
	lingers      []slinger
}

// runSharded executes one trial on the sharded engine. arenas supplies
// one arena per shard (len ≥ the requested shard count; nil allocates
// fresh substrate).
func runSharded(sc Scenario, arm Arm, seed int64, rep int, arenas []*arena.Arena) ([]CircuitOutcome, NetStats, ChurnStats, ResilienceStats, error) {
	e := &shardedEngine{
		sc:      sc,
		arm:     arm,
		seed:    seed,
		churnOn: sc.hasChurn(),
		pathRNG: sim.NewRNG(seed, "scenario-churn-paths"),
		failed:  make(map[netem.NodeID]bool),
	}
	if len(arenas) > 0 {
		e.dlSlab = arenas[0].Slot("scenario.sharded-downloads", func() any {
			return new(arena.Slab[sdownload])
		}).(*arena.Slab[sdownload])
	}
	if e.churnOn {
		e.churn.Lifetime = newLifetimeDist(arm.Name)
	}

	var initial []*core.ShardedCircuit
	var err error
	if sc.Topology.Population != nil {
		initial, err = e.buildGenerated(arenas)
	} else {
		initial, err = e.buildExplicit(arenas)
	}
	if err != nil {
		return nil, NetStats{}, ChurnStats{}, ResilienceStats{}, err
	}
	if sc.Faults.Enabled() {
		faults.InstallSharded(e.sn, sc.Faults, seed)
	}

	// Initial downloads follow the declared arrival process, drawn from
	// the same streams as the single-clock engine.
	delays := arrivalDelays(seed, sc.Circuits, len(initial))
	for i, c := range initial {
		d := e.newDownload(i)
		d.circuit = c
		e.downloads = append(e.downloads, d)
		if c == nil {
			d.aborted, d.rejected = true, true
			if e.churnOn {
				e.churn.Aborted++
				e.churn.Rejected++
			}
			continue
		}
		if e.churnOn {
			e.churn.Built++
		}
		e.starts = append(e.starts, spending{at: sim.Time(0).Add(delays[i]), d: d})
	}
	sort.SliceStable(e.starts, func(i, j int) bool { return e.starts[i].at.Before(e.starts[j].at) })

	// Churn arrival instants are pre-drawn at t = 0 from the same
	// "scenario-churn" stream the single-clock engine consumes, so the
	// ledger indices and instants line up with it.
	if ce := sc.CircuitEvents; ce.ArrivalRate > 0 {
		rng := sim.NewRNG(seed, "scenario-churn")
		var at time.Duration
		for j := 0; j < ce.Arrivals; j++ {
			at += time.Duration(rng.Exponential(1/ce.ArrivalRate) * float64(time.Second))
			d := e.newDownload(len(e.downloads))
			e.downloads = append(e.downloads, d)
			e.arrivals = append(e.arrivals, spending{at: sim.Time(0).Add(at), d: d})
		}
	}
	e.teardowns = append([]TeardownEvent(nil), sc.CircuitEvents.Teardowns...)
	sort.SliceStable(e.teardowns, func(i, j int) bool { return e.teardowns[i].At.Before(e.teardowns[j].At) })
	e.relayEvs = append([]RelayEvent(nil), sc.RelayEvents...)
	sort.SliceStable(e.relayEvs, func(i, j int) bool { return e.relayEvs[i].At.Before(e.relayEvs[j].At) })

	e.sn.RunWindows(sc.Horizon, e.barrier)
	return e.collect(rep), netStatsSharded(e.sn), e.churn, ResilienceStats{}, nil
}

// newDownload allocates a ledger entry from the arena slab when one is
// in play, from the heap otherwise.
func (e *shardedEngine) newDownload(index int) *sdownload {
	if e.dlSlab != nil {
		d := e.dlSlab.New()
		d.index = index
		return d
	}
	return &sdownload{index: index}
}

// newShardedNetwork builds the trial's ShardedNetwork from the
// scenario's fabric spec (TrainSize stamped onto a deep copy) and pins
// the partition-independent barrier stride.
func (e *shardedEngine) newShardedNetwork(arenas []*arena.Arena) error {
	spec := e.sc.Topology.Fabric.Clone()
	for i := range spec.Trunks {
		spec.Trunks[i].Config.TrainSize = e.sc.TrainSize
	}
	sn, err := core.NewShardedNetwork(e.seed, spec, e.sc.Shards, arenas)
	if err != nil {
		return err
	}
	if stride := spec.MinPositiveTrunkDelay(); stride > 0 {
		sn.SetWindow(stride)
		e.stride = stride
	}
	e.sn = sn
	return nil
}

// buildExplicit mirrors the single-clock buildExplicit on the sharded
// network: relays attached in declared order, circuits built along
// their declared paths.
func (e *shardedEngine) buildExplicit(arenas []*arena.Arena) ([]*core.ShardedCircuit, error) {
	sc := e.sc
	if err := e.newShardedNetwork(arenas); err != nil {
		return nil, err
	}
	if err := e.sn.ConfigureRelays(e.arm.Relay); err != nil {
		return nil, err
	}
	for _, r := range sc.Topology.Relays {
		acc := r.Access
		acc.TrainSize = sc.TrainSize
		if _, err := e.sn.AddRelay(r.ID, acc); err != nil {
			return nil, err
		}
	}
	access := sc.ClientAccess
	if access.UpRate == 0 {
		access = netem.Symmetric(units.Mbps(100), 5*time.Millisecond, 0)
	}
	access.TrainSize = sc.TrainSize
	e.access = access
	circuits := make([]*core.ShardedCircuit, sc.Circuits.Count)
	for i := range circuits {
		source, sink := netem.NodeID("client"), netem.NodeID("server")
		if sc.Circuits.Count > 1 {
			source = netem.NodeID(fmt.Sprintf("client-%03d", i))
			sink = netem.NodeID(fmt.Sprintf("server-%03d", i))
		}
		c, err := e.sn.BuildCircuit(core.CircuitSpec{
			Source:       source,
			Sink:         sink,
			SourceAccess: access,
			SinkAccess:   access,
			Relays:       sc.Circuits.path(i),
			Transport:    e.arm.Transport,
			TraceCwnd:    sc.Probes.TraceCwnd,
		})
		if err != nil {
			if errors.Is(err, core.ErrCircuitRejected) {
				continue
			}
			return nil, fmt.Errorf("circuit %d: %w", i, err)
		}
		circuits[i] = c
	}
	return circuits, nil
}

// buildGenerated mirrors workload.Build on the sharded network: the
// same "workload-relays" population, the same consensus, and initial
// paths from the same "workload-paths" stream.
func (e *shardedEngine) buildGenerated(arenas []*arena.Arena) ([]*core.ShardedCircuit, error) {
	sc := e.sc
	relays, err := workload.GenerateRelays(e.seed, *sc.Topology.Population)
	if err != nil {
		return nil, err
	}
	if err := e.newShardedNetwork(arenas); err != nil {
		return nil, err
	}
	if err := e.sn.ConfigureRelays(e.arm.Relay); err != nil {
		return nil, err
	}
	descs := make([]directory.Descriptor, len(relays))
	for i, r := range relays {
		descs[i] = r.Desc
		r.Access.TrainSize = sc.TrainSize
		if _, err := e.sn.AddRelay(r.Desc.ID, r.Access); err != nil {
			return nil, err
		}
	}
	e.cons, err = directory.NewConsensus(descs)
	if err != nil {
		return nil, err
	}
	access := sc.ClientAccess
	if access.UpRate == 0 {
		access = netem.Symmetric(units.Mbps(100), 5*time.Millisecond, sc.Topology.Population.QueueCap)
	}
	access.TrainSize = sc.TrainSize
	e.access = access

	pathRNG := sim.NewRNG(e.seed, "workload-paths")
	circuits := make([]*core.ShardedCircuit, sc.Circuits.Count)
	for i := range circuits {
		path, err := e.cons.SelectPath(pathRNG, e.hops())
		if err != nil {
			return nil, fmt.Errorf("circuit %d: %w", i, err)
		}
		ids := make([]netem.NodeID, len(path))
		for j, d := range path {
			ids[j] = d.ID
		}
		c, err := e.sn.BuildCircuit(core.CircuitSpec{
			Source:       netem.NodeID(fmt.Sprintf("client-%03d", i)),
			Sink:         netem.NodeID(fmt.Sprintf("server-%03d", i)),
			SourceAccess: access,
			SinkAccess:   access,
			Relays:       ids,
			Transport:    e.arm.Transport,
			TraceCwnd:    sc.Probes.TraceCwnd,
		})
		if err != nil {
			if errors.Is(err, core.ErrCircuitRejected) {
				continue
			}
			return nil, fmt.Errorf("circuit %d: %w", i, err)
		}
		circuits[i] = c
	}
	return circuits, nil
}

// nextBarrier returns the instant of the barrier after now.
func (e *shardedEngine) nextBarrier(now sim.Time) sim.Time {
	if e.stride == 0 {
		return e.sc.Horizon
	}
	if n := now.Add(e.stride); n.Before(e.sc.Horizon) {
		return n
	}
	return e.sc.Horizon
}

// barrier is the engine's control plane, run by RunWindows with every
// shard clock parked at now. Returning false stops the trial.
func (e *shardedEngine) barrier(now sim.Time) bool {
	e.handleCompletions(now)
	e.applyLingers(now)
	e.applyTeardowns(now)
	e.applyRelayEvents(now)
	e.scheduleArrivals(now)
	e.scheduleStarts(now)
	return !e.finished()
}

// handleCompletions accounts every download that completed during the
// last window, in index order, and starts its circuit's teardown linger.
func (e *shardedEngine) handleCompletions(now sim.Time) {
	for _, d := range e.downloads {
		if !d.done || d.handled || d.aborted {
			continue
		}
		d.handled = true
		if !e.churnOn {
			continue // static circuits live to the end of the trial
		}
		if delay := e.sc.CircuitEvents.TeardownDelay; delay > 0 {
			e.lingers = append(e.lingers, slinger{at: d.doneAt.Add(delay), c: d.circuit})
		} else {
			e.teardown(d.circuit)
		}
	}
}

// applyLingers tears down completed circuits whose linger has expired.
func (e *shardedEngine) applyLingers(now sim.Time) {
	kept := e.lingers[:0]
	for _, l := range e.lingers {
		if l.at.After(now) {
			kept = append(kept, l)
			continue
		}
		e.teardown(l.c)
	}
	for i := len(kept); i < len(e.lingers); i++ {
		e.lingers[i] = slinger{}
	}
	e.lingers = kept
}

// applyTeardowns aborts initial circuits whose scheduled teardown
// instant has passed.
func (e *shardedEngine) applyTeardowns(now sim.Time) {
	for e.nextTeardown < len(e.teardowns) && !e.teardowns[e.nextTeardown].At.After(now) {
		td := e.teardowns[e.nextTeardown]
		e.nextTeardown++
		e.abort(e.downloads[td.Index])
	}
}

// applyRelayEvents plays the relay failures/recoveries due by now, in
// declared (stable by At) order.
func (e *shardedEngine) applyRelayEvents(now sim.Time) {
	for e.nextRelayEv < len(e.relayEvs) && !e.relayEvs[e.nextRelayEv].At.After(now) {
		ev := e.relayEvs[e.nextRelayEv]
		e.nextRelayEv++
		e.relayEvent(ev, now)
	}
}

// relayEvent mirrors the single-clock engine: on failure every live
// circuit crossing the relay is torn down; Rebuild arms give the
// affected downloads fresh circuits (avoiding all currently-failed
// relays) and restart running transfers at the barrier instant.
func (e *shardedEngine) relayEvent(ev RelayEvent, now sim.Time) {
	r := e.sn.Relay(ev.Relay)
	if ev.Kind == RelayRecover {
		delete(e.failed, ev.Relay)
		r.Recover()
		return
	}
	if e.failed[ev.Relay] {
		return
	}
	e.failed[ev.Relay] = true
	r.Fail()
	for _, d := range e.downloads {
		if d.done || d.aborted || d.circuit == nil || d.circuit.Closed() {
			continue
		}
		if !crossesShardedRelay(d.circuit, ev.Relay) {
			continue
		}
		e.teardown(d.circuit)
		if !e.arm.Rebuild || e.cons == nil {
			d.aborted = true
			e.churn.Aborted++
			continue
		}
		d.rebuild++
		if err := e.buildOn(d, e.failed); err != nil {
			if errors.Is(err, core.ErrCircuitRejected) {
				d.rejected = true
				e.churn.Rejected++
			}
			d.aborted = true
			e.churn.Aborted++
			continue
		}
		e.churn.Rebuilt++
		// Restart only a transfer that was actually running; a download
		// still waiting for its staggered start keeps that schedule and
		// simply starts on the rebuilt circuit.
		if d.started {
			e.startTransfer(d, now)
		}
	}
}

// scheduleArrivals builds and starts the churn downloads whose arrival
// instant falls inside the upcoming window. Building at the barrier
// preceding the instant keeps the path sample consistent with the relay
// failures applied so far — no barrier can intervene before the start.
func (e *shardedEngine) scheduleArrivals(now sim.Time) {
	next := e.nextBarrier(now)
	for e.nextArrival < len(e.arrivals) && e.arrivals[e.nextArrival].at.Before(next) {
		p := e.arrivals[e.nextArrival]
		e.nextArrival++
		e.arrive(p.d, p.at)
	}
}

// arrive gives churn download d a fresh circuit and starts its transfer
// at the exact arrival instant.
func (e *shardedEngine) arrive(d *sdownload, at sim.Time) {
	if err := e.buildOn(d, e.failed); err != nil {
		if errors.Is(err, core.ErrCircuitRejected) {
			d.rejected = true
			e.churn.Rejected++
		}
		d.aborted = true
		e.churn.Aborted++
		return
	}
	d.started = true
	d.startAt = at
	e.startTransfer(d, at)
}

// scheduleStarts arms the initial transfers whose start instant falls
// inside the upcoming window.
func (e *shardedEngine) scheduleStarts(now sim.Time) {
	next := e.nextBarrier(now)
	for e.nextStart < len(e.starts) && e.starts[e.nextStart].at.Before(next) {
		p := e.starts[e.nextStart]
		e.nextStart++
		d := p.d
		if d.started || d.aborted || d.circuit == nil || d.circuit.Closed() {
			continue
		}
		d.started = true
		d.startAt = p.at
		e.startTransfer(d, p.at)
	}
}

// startTransfer begins (or, after a rebuild, restarts) d's transfer on
// its current circuit at the absolute instant `at`. The completion
// callback runs mid-window on the completing shard and writes only d's
// own fields; its timestamps derive from the schedule instant, so they
// are barrier-placement-independent.
func (e *shardedEngine) startTransfer(d *sdownload, at sim.Time) {
	d.done, d.handled = false, false
	size := e.sc.Circuits.sizeFor(d.index)
	d.circuit.ScheduleTransfer(at, size, e.sc.Circuits.Download, func(circTTLB time.Duration) {
		d.doneAt = at.Add(circTTLB)
		d.ttlb = d.doneAt.Sub(d.startAt)
		d.done = true
	})
}

// buildOn builds download d a circuit: a consensus-sampled path
// (excluding excl) on generated topologies, the declared path cycle on
// explicit ones. Rebuilds get distinct endpoint node IDs.
func (e *shardedEngine) buildOn(d *sdownload, excl map[netem.NodeID]bool) error {
	var path []netem.NodeID
	if e.cons != nil {
		descs, err := e.cons.SelectPathExcluding(e.pathRNG, e.hops(), excl)
		if err != nil {
			return err
		}
		path = make([]netem.NodeID, len(descs))
		for i, dd := range descs {
			path[i] = dd.ID
		}
	} else {
		path = e.sc.Circuits.path(d.index % len(e.sc.Circuits.Paths))
	}
	source := fmt.Sprintf("client-%03d", d.index)
	sink := fmt.Sprintf("server-%03d", d.index)
	if d.rebuild > 0 {
		source = fmt.Sprintf("%s.r%d", source, d.rebuild)
		sink = fmt.Sprintf("%s.r%d", sink, d.rebuild)
	}
	c, err := e.sn.BuildCircuit(core.CircuitSpec{
		Source:       netem.NodeID(source),
		Sink:         netem.NodeID(sink),
		SourceAccess: e.access,
		SinkAccess:   e.access,
		Relays:       path,
		Transport:    e.arm.Transport,
		TraceCwnd:    e.sc.Probes.TraceCwnd,
	})
	if err != nil {
		return err
	}
	d.circuit = c
	e.churn.Built++
	return nil
}

// abort tears download d down before completion.
func (e *shardedEngine) abort(d *sdownload) {
	if d.done || d.aborted || d.circuit == nil || d.circuit.Closed() {
		return
	}
	d.aborted = true
	e.churn.Aborted++
	e.teardown(d.circuit)
}

// teardown closes a circuit and accounts its lifetime.
func (e *shardedEngine) teardown(c *core.ShardedCircuit) {
	if c.Closed() {
		return
	}
	c.Teardown()
	e.churn.TornDown++
	e.churn.Lifetime.Add(c.Lifetime().Seconds())
}

// hops returns the sampled path length on generated topologies.
func (e *shardedEngine) hops() int {
	if e.sc.Circuits.Hops > 0 {
		return e.sc.Circuits.Hops
	}
	return 3
}

// crossesShardedRelay reports whether the circuit's path contains the
// relay.
func crossesShardedRelay(c *core.ShardedCircuit, id netem.NodeID) bool {
	for _, r := range c.Relays() {
		if r == id {
			return true
		}
	}
	return false
}

// finished reports whether the trial can stop at this barrier: every
// download accounted, every linger applied, and nothing pending. The
// decision reads only shard-count-invariant state, so the stop barrier
// — and with it every trailing trunk statistic — is invariant too.
func (e *shardedEngine) finished() bool {
	if e.sc.RunFullHorizon {
		return false
	}
	if e.nextStart < len(e.starts) || e.nextArrival < len(e.arrivals) || len(e.lingers) > 0 {
		return false
	}
	for _, d := range e.downloads {
		if !d.aborted && !d.handled {
			return false
		}
	}
	return true
}

// collect renders the downloads into outcomes, in index order. With
// churn on, circuits still alive at the stop are torn down so their
// lifetimes are accounted; static trials leave them standing, like the
// single-clock engine.
func (e *shardedEngine) collect(rep int) []CircuitOutcome {
	out := make([]CircuitOutcome, len(e.downloads))
	for i, d := range e.downloads {
		o := CircuitOutcome{
			Replication: rep,
			Index:       i,
			TTLB:        d.ttlb,
			Done:        d.done,
			Aborted:     d.aborted,
			Rejected:    d.rejected,
			StartAt:     d.startAt,
			Rebuilds:    d.rebuild,
		}
		if d.circuit != nil {
			if e.churnOn {
				e.teardown(d.circuit)
			}
			o.OptimalCells = d.circuit.ModelPath().OptimalSourceWindowCells()
			st := d.circuit.SourceSender().Stats()
			o.ExitCwnd, o.ExitTime, o.Restarts = st.ExitCwnd, st.ExitTime, st.Restarts
			if e.sc.Probes.TraceCwnd {
				o.Trace = d.circuit.SourceTrace()
			}
		}
		out[i] = o
	}
	return out
}

// netStatsSharded snapshots the sharded fabric after a trial. The trunk
// list is in the unsharded fabric's global order, so the per-trunk
// table renders identically at every shard count.
func netStatsSharded(sn *core.ShardedNetwork) NetStats {
	fab := sn.Fabric()
	st := NetStats{
		UnknownDst: fab.UnknownDst(),
		Unroutable: fab.Unroutable(),
		SchedDrops: sn.SchedDrops(),
	}
	for _, l := range fab.Trunks() {
		st.Trunks = append(st.Trunks, TrunkStat{Name: l.Name(), Stats: l.Stats()})
	}
	return st
}
