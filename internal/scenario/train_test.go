package scenario

import "testing"

// TestTrainSizeOneMatchesUntrained pins the byte-identity contract at
// the scenario level: TrainSize 1 selects the per-frame machinery
// verbatim, so a full multi-arm churn run — arrivals, teardowns, relay
// failure, rebuilds — produces bit-identical results with TrainSize 0.
func TestTrainSizeOneMatchesUntrained(t *testing.T) {
	base := churnScenario()
	base.TrainSize = 0
	trained := churnScenario()
	trained.TrainSize = 1
	a, err := Runner{Workers: 1}.Run(base)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Runner{Workers: 1}.Run(trained)
	if err != nil {
		t.Fatal(err)
	}
	assertResultsIdentical(t, a, b)
}

// TestTrainedWorkerCountDeterminism extends the worker-count guarantee
// to batched delivery: with cell trains coalescing on every link, the
// trial outcome is still a pure function of seeds and virtual time, so
// Workers 1 and Workers 8 agree bit for bit.
func TestTrainedWorkerCountDeterminism(t *testing.T) {
	mk := func() Scenario {
		sc := churnScenario()
		sc.TrainSize = 8
		return sc
	}
	serial, err := Runner{Workers: 1}.Run(mk())
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Runner{Workers: 8}.Run(mk())
	if err != nil {
		t.Fatal(err)
	}
	assertResultsIdentical(t, serial, parallel)
}
