package directory

import (
	"errors"
	"testing"
	"time"

	"circuitstart/internal/netem"
	"circuitstart/internal/sim"
	"circuitstart/internal/units"
)

func allFlags() Flag { return FlagGuard | FlagExit | FlagMiddle }

func testConsensus(t *testing.T) *Consensus {
	t.Helper()
	c, err := NewConsensus([]Descriptor{
		{ID: "g1", Bandwidth: units.Mbps(100), Latency: 5 * time.Millisecond, Flags: FlagGuard | FlagMiddle},
		{ID: "g2", Bandwidth: units.Mbps(50), Latency: 5 * time.Millisecond, Flags: FlagGuard | FlagMiddle},
		{ID: "m1", Bandwidth: units.Mbps(80), Latency: 5 * time.Millisecond, Flags: FlagMiddle},
		{ID: "m2", Bandwidth: units.Mbps(20), Latency: 5 * time.Millisecond, Flags: FlagMiddle},
		{ID: "e1", Bandwidth: units.Mbps(60), Latency: 5 * time.Millisecond, Flags: FlagExit | FlagMiddle},
		{ID: "e2", Bandwidth: units.Mbps(40), Latency: 5 * time.Millisecond, Flags: FlagExit},
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConsensusBasics(t *testing.T) {
	c := testConsensus(t)
	if c.Len() != 6 {
		t.Errorf("Len = %d", c.Len())
	}
	d, ok := c.Relay("m1")
	if !ok || d.Bandwidth != units.Mbps(80) {
		t.Errorf("Relay(m1) = %+v, %v", d, ok)
	}
	if _, ok := c.Relay("nope"); ok {
		t.Error("found nonexistent relay")
	}
	if got := c.TotalBandwidth(); got != units.Mbps(350) {
		t.Errorf("TotalBandwidth = %v", got)
	}
	rs := c.Relays()
	for i := 1; i < len(rs); i++ {
		if rs[i-1].ID >= rs[i].ID {
			t.Fatal("Relays() not sorted")
		}
	}
}

func TestNewConsensusRejectsDuplicates(t *testing.T) {
	_, err := NewConsensus([]Descriptor{
		{ID: "a", Bandwidth: units.Mbps(1), Flags: allFlags()},
		{ID: "a", Bandwidth: units.Mbps(2), Flags: allFlags()},
	})
	if !errors.Is(err, ErrDuplicateRelay) {
		t.Errorf("err = %v, want ErrDuplicateRelay", err)
	}
}

func TestNewConsensusRejectsZeroBandwidth(t *testing.T) {
	_, err := NewConsensus([]Descriptor{{ID: "a", Bandwidth: 0, Flags: allFlags()}})
	if err == nil {
		t.Error("zero bandwidth accepted")
	}
}

func TestPickWeightedRespectsFlags(t *testing.T) {
	c := testConsensus(t)
	rng := sim.NewRNG(1, "pick")
	for i := 0; i < 200; i++ {
		d, err := c.PickWeighted(rng, FlagExit, nil)
		if err != nil {
			t.Fatal(err)
		}
		if d.ID != "e1" && d.ID != "e2" {
			t.Fatalf("picked non-exit %q for exit position", d.ID)
		}
	}
}

func TestPickWeightedBandwidthBias(t *testing.T) {
	c := testConsensus(t)
	rng := sim.NewRNG(2, "bias")
	counts := map[netem.NodeID]int{}
	const n = 5000
	for i := 0; i < n; i++ {
		d, err := c.PickWeighted(rng, FlagGuard, nil)
		if err != nil {
			t.Fatal(err)
		}
		counts[d.ID]++
	}
	// g1 has 2x the bandwidth of g2 → expect ~2:1 selection ratio.
	ratio := float64(counts["g1"]) / float64(counts["g2"])
	if ratio < 1.7 || ratio > 2.3 {
		t.Errorf("g1:g2 selection ratio = %.2f, want ≈2", ratio)
	}
}

func TestPickWeightedExclusion(t *testing.T) {
	c := testConsensus(t)
	rng := sim.NewRNG(3, "excl")
	excl := map[netem.NodeID]bool{"e1": true}
	for i := 0; i < 100; i++ {
		d, err := c.PickWeighted(rng, FlagExit, excl)
		if err != nil {
			t.Fatal(err)
		}
		if d.ID == "e1" {
			t.Fatal("picked excluded relay")
		}
	}
	excl["e2"] = true
	if _, err := c.PickWeighted(rng, FlagExit, excl); err != ErrNoCandidates {
		t.Errorf("err = %v, want ErrNoCandidates", err)
	}
}

func TestSelectPathStructure(t *testing.T) {
	c := testConsensus(t)
	rng := sim.NewRNG(4, "path")
	for i := 0; i < 100; i++ {
		path, err := c.SelectPath(rng, 3)
		if err != nil {
			t.Fatal(err)
		}
		if len(path) != 3 {
			t.Fatalf("path length %d", len(path))
		}
		if !path[0].Flags.Has(FlagGuard) {
			t.Errorf("first hop %q lacks Guard flag", path[0].ID)
		}
		if !path[1].Flags.Has(FlagMiddle) {
			t.Errorf("middle hop %q lacks Middle flag", path[1].ID)
		}
		if !path[2].Flags.Has(FlagExit) {
			t.Errorf("exit hop %q lacks Exit flag", path[2].ID)
		}
		seen := map[netem.NodeID]bool{}
		for _, d := range path {
			if seen[d.ID] {
				t.Fatalf("relay %q appears twice in path", d.ID)
			}
			seen[d.ID] = true
		}
	}
}

func TestSelectPathSingleHop(t *testing.T) {
	c := testConsensus(t)
	rng := sim.NewRNG(5, "single")
	path, err := c.SelectPath(rng, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !path[0].Flags.Has(FlagExit) {
		t.Errorf("single hop %q must be an exit", path[0].ID)
	}
}

func TestSelectPathErrors(t *testing.T) {
	c := testConsensus(t)
	rng := sim.NewRNG(6, "errs")
	if _, err := c.SelectPath(rng, 0); err == nil {
		t.Error("zero-hop path accepted")
	}
	if _, err := c.SelectPath(rng, 7); !errors.Is(err, ErrPathTooLong) {
		t.Errorf("err = %v, want ErrPathTooLong", err)
	}
}

func TestSelectPathDeterministicWithSeed(t *testing.T) {
	c := testConsensus(t)
	p1, err := c.SelectPath(sim.NewRNG(7, "det"), 3)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := c.SelectPath(sim.NewRNG(7, "det"), 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range p1 {
		if p1[i].ID != p2[i].ID {
			t.Fatal("same seed produced different paths")
		}
	}
}

func TestFlagString(t *testing.T) {
	cases := map[string]string{
		FlagGuard.String():              "Guard",
		FlagExit.String():               "Exit",
		(FlagGuard | FlagExit).String(): "Guard|Exit",
		Flag(0).String():                "none",
		allFlags().String():             "Guard|Exit|Middle",
	}
	for got, want := range cases {
		if got != want {
			t.Errorf("Flag.String() = %q, want %q", got, want)
		}
	}
}
