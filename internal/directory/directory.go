// Package directory models the overlay's view of available relays: a
// consensus of relay descriptors with capacity and position flags, and
// bandwidth-weighted path selection as Tor performs it.
//
// The paper's aggregate experiment transfers data "over a randomly
// generated network of Tor relays"; this package is where those networks
// are described and circuits' relay sequences are chosen.
package directory

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"circuitstart/internal/netem"
	"circuitstart/internal/sim"
	"circuitstart/internal/units"
)

// Flag marks the positions a relay may occupy, mirroring Tor's
// Guard/Exit consensus flags.
type Flag uint8

// Position flags. A relay may hold several.
const (
	FlagGuard Flag = 1 << iota
	FlagExit
	FlagMiddle
)

// Has reports whether all bits of q are set in f.
func (f Flag) Has(q Flag) bool { return f&q == q }

func (f Flag) String() string {
	s := ""
	if f.Has(FlagGuard) {
		s += "Guard|"
	}
	if f.Has(FlagExit) {
		s += "Exit|"
	}
	if f.Has(FlagMiddle) {
		s += "Middle|"
	}
	if s == "" {
		return "none"
	}
	return s[:len(s)-1]
}

// Descriptor is one relay's consensus entry.
type Descriptor struct {
	// ID is the relay's network identity.
	ID netem.NodeID
	// Bandwidth is the advertised (access link) capacity.
	Bandwidth units.DataRate
	// Latency is the relay's access propagation delay.
	Latency time.Duration
	// Flags lists positions the relay may serve in.
	Flags Flag
}

// Consensus is the set of relays available for path selection.
type Consensus struct {
	relays []Descriptor
	byID   map[netem.NodeID]int
}

// Errors from consensus operations.
var (
	ErrDuplicateRelay = errors.New("directory: duplicate relay ID")
	ErrNoCandidates   = errors.New("directory: no candidate relay for position")
	ErrPathTooLong    = errors.New("directory: path longer than distinct candidate relays")
)

// NewConsensus builds a consensus from descriptors.
func NewConsensus(relays []Descriptor) (*Consensus, error) {
	c := &Consensus{byID: make(map[netem.NodeID]int, len(relays))}
	for _, d := range relays {
		if _, dup := c.byID[d.ID]; dup {
			return nil, fmt.Errorf("%w: %q", ErrDuplicateRelay, d.ID)
		}
		if d.Bandwidth <= 0 {
			return nil, fmt.Errorf("directory: relay %q with non-positive bandwidth", d.ID)
		}
		c.byID[d.ID] = len(c.relays)
		c.relays = append(c.relays, d)
	}
	return c, nil
}

// Len returns the number of relays.
func (c *Consensus) Len() int { return len(c.relays) }

// Relay returns the descriptor for id.
func (c *Consensus) Relay(id netem.NodeID) (Descriptor, bool) {
	i, ok := c.byID[id]
	if !ok {
		return Descriptor{}, false
	}
	return c.relays[i], true
}

// Relays returns all descriptors sorted by ID (deterministic order).
func (c *Consensus) Relays() []Descriptor {
	out := make([]Descriptor, len(c.relays))
	copy(out, c.relays)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// TotalBandwidth sums all relay bandwidths.
func (c *Consensus) TotalBandwidth() units.DataRate {
	var sum units.DataRate
	for _, d := range c.relays {
		sum += d.Bandwidth
	}
	return sum
}

// PickWeighted selects one relay holding all bits of flag,
// bandwidth-weighted as Tor does, excluding IDs in excl.
func (c *Consensus) PickWeighted(rng *sim.RNG, flag Flag, excl map[netem.NodeID]bool) (Descriptor, error) {
	var total int64
	candidates := make([]Descriptor, 0, len(c.relays))
	for _, d := range c.relays {
		if !d.Flags.Has(flag) || excl[d.ID] {
			continue
		}
		candidates = append(candidates, d)
		total += d.Bandwidth.BitsPerSecond()
	}
	if len(candidates) == 0 {
		return Descriptor{}, ErrNoCandidates
	}
	x := rng.Int63n(total)
	for _, d := range candidates {
		x -= d.Bandwidth.BitsPerSecond()
		if x < 0 {
			return d, nil
		}
	}
	return candidates[len(candidates)-1], nil
}

// SelectPath chooses a circuit path of nHops distinct relays: the first
// hop from Guard-flagged relays, the last from Exit-flagged, and the
// rest from Middle-flagged, all bandwidth-weighted.
func (c *Consensus) SelectPath(rng *sim.RNG, nHops int) ([]Descriptor, error) {
	return c.SelectPathExcluding(rng, nHops, nil)
}

// SelectPathExcluding is SelectPath with an additional exclusion set:
// no relay whose entry in excl is true is considered for any position
// (false-valued and non-consensus entries are ignored). Churn engines
// use it to rebuild circuits around failed relays.
func (c *Consensus) SelectPathExcluding(rng *sim.RNG, nHops int, excl map[netem.NodeID]bool) ([]Descriptor, error) {
	if nHops < 1 {
		return nil, errors.New("directory: path needs at least one hop")
	}
	used := make(map[netem.NodeID]bool, nHops+len(excl))
	excluded := 0
	for id, on := range excl {
		if !on {
			continue
		}
		used[id] = true
		if _, member := c.byID[id]; member {
			excluded++
		}
	}
	if nHops > len(c.relays)-excluded {
		return nil, ErrPathTooLong
	}
	path := make([]Descriptor, nHops)

	posFlag := func(i int) Flag {
		switch {
		case nHops == 1:
			return FlagExit
		case i == 0:
			return FlagGuard
		case i == nHops-1:
			return FlagExit
		default:
			return FlagMiddle
		}
	}
	// Choose exit first, as Tor does: exits are the scarce position.
	order := make([]int, 0, nHops)
	order = append(order, nHops-1)
	for i := 0; i < nHops-1; i++ {
		order = append(order, i)
	}
	for _, i := range order {
		d, err := c.PickWeighted(rng, posFlag(i), used)
		if err != nil {
			return nil, fmt.Errorf("directory: position %d (%v): %w", i, posFlag(i), err)
		}
		path[i] = d
		used[d.ID] = true
	}
	return path, nil
}
