package faults

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"circuitstart/internal/netem"
	"circuitstart/internal/sim"
)

// planSpec is the JSON wire form of a Plan. Times are float seconds and
// milliseconds so spec files read like the paper's prose ("a 30 s trunk
// partition", "±5 ms jitter") rather than nanosecond integers. The
// sub-structs are named so ParseSpec and MarshalSpec share one schema.
type planSpec struct {
	BurstLoss  []burstLossSpec `json:"burst_loss,omitempty"`
	Jitter     []jitterSpec    `json:"jitter,omitempty"`
	Flaps      []flapSpec      `json:"flaps,omitempty"`
	Partitions []partitionSpec `json:"partitions,omitempty"`
	Degrades   []degradeSpec   `json:"degrades,omitempty"`
	Recovery   *recoverySpec   `json:"recovery,omitempty"`
}

type burstLossSpec struct {
	Relay    string  `json:"relay"`
	FromS    float64 `json:"from_s"`
	UntilS   float64 `json:"until_s"`
	PGoodBad float64 `json:"p_good_bad"`
	PBadGood float64 `json:"p_bad_good"`
	LossGood float64 `json:"loss_good"`
	LossBad  float64 `json:"loss_bad"`
}

type jitterSpec struct {
	Relay       string  `json:"relay"`
	FromS       float64 `json:"from_s"`
	UntilS      float64 `json:"until_s"`
	AmplitudeMS float64 `json:"amplitude_ms"`
	SpikeProb   float64 `json:"spike_prob"`
	SpikeMS     float64 `json:"spike_ms"`
}

type flapSpec struct {
	Relay    string  `json:"relay"`
	DownAtS  float64 `json:"down_at_s"`
	UpAfterS float64 `json:"up_after_s"`
	Repeat   int     `json:"repeat"`
	EveryS   float64 `json:"every_s"`
}

type partitionSpec struct {
	TrunkA     string  `json:"trunk_a"`
	TrunkB     string  `json:"trunk_b"`
	AtS        float64 `json:"at_s"`
	HealAfterS float64 `json:"heal_after_s"`
}

type degradeSpec struct {
	Relay         string  `json:"relay"`
	Mode          string  `json:"mode"`
	AtS           float64 `json:"at_s"`
	RecoverAfterS float64 `json:"recover_after_s"`
	RateFactor    float64 `json:"rate_factor"`
}

type recoverySpec struct {
	Enabled    bool    `json:"enabled"`
	StallRTOs  int     `json:"stall_rtos"`
	MaxRetries int     `json:"max_retries"`
	RTOMinMS   float64 `json:"rto_min_ms"`
	RTOMaxMS   float64 `json:"rto_max_ms"`
}

func seconds(s float64) sim.Time       { return sim.Time(s * float64(time.Second)) }
func secondsD(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }
func millis(ms float64) time.Duration  { return time.Duration(ms * float64(time.Millisecond)) }

func toSeconds(t sim.Time) float64       { return float64(t) / float64(time.Second) }
func toSecondsD(d time.Duration) float64 { return float64(d) / float64(time.Second) }
func toMillis(d time.Duration) float64   { return float64(d) / float64(time.Millisecond) }

// ParseSpec decodes a JSON fault plan. Unknown fields are rejected so a
// typo fails the run instead of silently injecting nothing. The returned
// plan still needs Validate against the target topology.
func ParseSpec(data []byte) (Plan, error) {
	var spec planSpec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return Plan{}, fmt.Errorf("faults: parsing spec: %w", err)
	}
	var p Plan
	for _, b := range spec.BurstLoss {
		p.BurstLoss = append(p.BurstLoss, BurstLoss{
			Relay: netem.NodeID(b.Relay),
			From:  seconds(b.FromS), Until: seconds(b.UntilS),
			PGoodBad: b.PGoodBad, PBadGood: b.PBadGood,
			LossGood: b.LossGood, LossBad: b.LossBad,
		})
	}
	for _, j := range spec.Jitter {
		p.Jitter = append(p.Jitter, Jitter{
			Relay: netem.NodeID(j.Relay),
			From:  seconds(j.FromS), Until: seconds(j.UntilS),
			Amplitude: millis(j.AmplitudeMS),
			SpikeProb: j.SpikeProb, SpikeDelay: millis(j.SpikeMS),
		})
	}
	for _, f := range spec.Flaps {
		p.Flaps = append(p.Flaps, Flap{
			Relay:  netem.NodeID(f.Relay),
			DownAt: seconds(f.DownAtS), UpAfter: secondsD(f.UpAfterS),
			Repeat: f.Repeat, Every: secondsD(f.EveryS),
		})
	}
	for _, pt := range spec.Partitions {
		p.Partitions = append(p.Partitions, Partition{
			TrunkA: netem.SwitchID(pt.TrunkA), TrunkB: netem.SwitchID(pt.TrunkB),
			At: seconds(pt.AtS), HealAfter: secondsD(pt.HealAfterS),
		})
	}
	for _, d := range spec.Degrades {
		var mode DegradeMode
		switch d.Mode {
		case "hang":
			mode = DegradeHang
		case "slow":
			mode = DegradeSlow
		default:
			return Plan{}, fmt.Errorf("faults: degrade mode %q (want \"hang\" or \"slow\")", d.Mode)
		}
		p.Degrades = append(p.Degrades, Degrade{
			Relay: netem.NodeID(d.Relay), Mode: mode,
			At: seconds(d.AtS), RecoverAfter: secondsD(d.RecoverAfterS),
			RateFactor: d.RateFactor,
		})
	}
	if r := spec.Recovery; r != nil {
		p.Recovery = Recovery{
			Enabled: r.Enabled, StallRTOs: r.StallRTOs, MaxRetries: r.MaxRetries,
			RTOMin: millis(r.RTOMinMS), RTOMax: millis(r.RTOMaxMS),
		}
	}
	return p, nil
}

// MarshalSpec renders a Plan back into its canonical JSON wire form —
// the inverse of ParseSpec, used by internal/spec to re-emit inline
// fault plans canonically so spec round-trips are byte-stable. The
// output is compact (no indentation); empty fault lists are omitted and
// a zero Recovery block is dropped entirely.
func MarshalSpec(p Plan) ([]byte, error) {
	var spec planSpec
	for _, b := range p.BurstLoss {
		spec.BurstLoss = append(spec.BurstLoss, burstLossSpec{
			Relay: string(b.Relay),
			FromS: toSeconds(b.From), UntilS: toSeconds(b.Until),
			PGoodBad: b.PGoodBad, PBadGood: b.PBadGood,
			LossGood: b.LossGood, LossBad: b.LossBad,
		})
	}
	for _, j := range p.Jitter {
		spec.Jitter = append(spec.Jitter, jitterSpec{
			Relay: string(j.Relay),
			FromS: toSeconds(j.From), UntilS: toSeconds(j.Until),
			AmplitudeMS: toMillis(j.Amplitude),
			SpikeProb:   j.SpikeProb, SpikeMS: toMillis(j.SpikeDelay),
		})
	}
	for _, f := range p.Flaps {
		spec.Flaps = append(spec.Flaps, flapSpec{
			Relay:   string(f.Relay),
			DownAtS: toSeconds(f.DownAt), UpAfterS: toSecondsD(f.UpAfter),
			Repeat: f.Repeat, EveryS: toSecondsD(f.Every),
		})
	}
	for _, pt := range p.Partitions {
		spec.Partitions = append(spec.Partitions, partitionSpec{
			TrunkA: string(pt.TrunkA), TrunkB: string(pt.TrunkB),
			AtS: toSeconds(pt.At), HealAfterS: toSecondsD(pt.HealAfter),
		})
	}
	for _, d := range p.Degrades {
		switch d.Mode {
		case DegradeHang, DegradeSlow:
		default:
			return nil, fmt.Errorf("faults: cannot marshal degrade mode %v", d.Mode)
		}
		spec.Degrades = append(spec.Degrades, degradeSpec{
			Relay: string(d.Relay), Mode: d.Mode.String(),
			AtS: toSeconds(d.At), RecoverAfterS: toSecondsD(d.RecoverAfter),
			RateFactor: d.RateFactor,
		})
	}
	if p.Recovery != (Recovery{}) {
		spec.Recovery = &recoverySpec{
			Enabled: p.Recovery.Enabled, StallRTOs: p.Recovery.StallRTOs,
			MaxRetries: p.Recovery.MaxRetries,
			RTOMinMS:   toMillis(p.Recovery.RTOMin), RTOMaxMS: toMillis(p.Recovery.RTOMax),
		}
	}
	return json.Marshal(spec)
}

// presets maps names to plan constructors parameterized by the target
// topology's relay IDs (in the topology's own order). Presets only touch
// relays — never trunks — so they apply to any topology; partition
// faults need an explicit spec file naming the trunk.
var presets = map[string]func(relays []netem.NodeID) Plan{
	// none: the empty plan — the control arm of a faults sweep axis.
	"none": func([]netem.NodeID) Plan { return Plan{} },
	// recovery: no injected faults, recovery armed. Distinguishes the
	// cost of the watchdog from the cost of the faults it answers.
	"recovery": func([]netem.NodeID) Plan {
		return Plan{Recovery: Recovery{Enabled: true}}
	},
	// burstloss: Gilbert–Elliott burst loss on the first three relays
	// from t=2s, ~4% mean loss in bursts (bad-state dwell ~10 frames).
	"burstloss": func(relays []netem.NodeID) Plan {
		var p Plan
		for _, id := range firstN(relays, 3) {
			p.BurstLoss = append(p.BurstLoss, BurstLoss{
				Relay: id, From: seconds(2),
				PGoodBad: 0.005, PBadGood: 0.1, LossGood: 0, LossBad: 0.8,
			})
		}
		p.Recovery = Recovery{Enabled: true}
		return p
	},
	// flaky: the first relay flaps (3 s down every 20 s), the second
	// jitters ±5 ms with occasional 50 ms spikes.
	"flaky": func(relays []netem.NodeID) Plan {
		var p Plan
		ids := firstN(relays, 2)
		if len(ids) > 0 {
			p.Flaps = append(p.Flaps, Flap{
				Relay: ids[0], DownAt: seconds(5),
				UpAfter: 3 * time.Second, Repeat: 2, Every: 20 * time.Second,
			})
		}
		if len(ids) > 1 {
			p.Jitter = append(p.Jitter, Jitter{
				Relay: ids[1], From: seconds(2),
				Amplitude: 5 * time.Millisecond,
				SpikeProb: 0.02, SpikeDelay: 50 * time.Millisecond,
			})
		}
		p.Recovery = Recovery{Enabled: true}
		return p
	},
	// hang: the first relay silently blackholes from t=5s for 15 s —
	// the failure mode only endpoint stall detection can see.
	"hang": func(relays []netem.NodeID) Plan {
		var p Plan
		for _, id := range firstN(relays, 1) {
			p.Degrades = append(p.Degrades, Degrade{
				Relay: id, Mode: DegradeHang,
				At: seconds(5), RecoverAfter: 15 * time.Second,
			})
		}
		p.Recovery = Recovery{Enabled: true}
		return p
	},
	// slow: the first relay limps at a tenth of its access rate from
	// t=5s for 20 s.
	"slow": func(relays []netem.NodeID) Plan {
		var p Plan
		for _, id := range firstN(relays, 1) {
			p.Degrades = append(p.Degrades, Degrade{
				Relay: id, Mode: DegradeSlow,
				At: seconds(5), RecoverAfter: 20 * time.Second, RateFactor: 0.1,
			})
		}
		p.Recovery = Recovery{Enabled: true}
		return p
	},
}

func firstN(ids []netem.NodeID, n int) []netem.NodeID {
	if len(ids) < n {
		n = len(ids)
	}
	return ids[:n]
}

// Preset renders a named fault preset against a topology's relay list.
// The returned plan still needs Validate (which also fills recovery
// defaults).
func Preset(name string, relays []netem.NodeID) (Plan, error) {
	fn, ok := presets[name]
	if !ok {
		return Plan{}, fmt.Errorf("faults: unknown preset %q (have %v)", name, PresetNames())
	}
	return fn(relays), nil
}

// PresetNames returns the available preset names, sorted.
func PresetNames() []string {
	names := make([]string, 0, len(presets))
	for name := range presets {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
