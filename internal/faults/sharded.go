package faults

import (
	"fmt"
	"time"

	"circuitstart/internal/netem"
	"circuitstart/internal/relay"
	"circuitstart/internal/sim"
	"circuitstart/internal/units"
)

// ShardedNetwork is the slice of a sharded simulation the injector
// needs. There is no single trial clock: every fault episode must
// schedule on the clock of the shard owning its target — a relay's
// access links live on the relay's shard, each trunk direction on the
// shard owning its source switch. core.ShardedNetwork satisfies it.
type ShardedNetwork interface {
	Relay(id netem.NodeID) *relay.Relay
	RelayClock(id netem.NodeID) *sim.Clock
	Trunk(a, b netem.SwitchID) *netem.Link
	TrunkClock(a, b netem.SwitchID) *sim.Clock
}

// InstallSharded compiles the plan onto a sharded trial. It mirrors
// Install episode for episode — identical named RNG streams, identical
// instants — so a faulted trial is byte-identical at every shard count;
// the only difference is that each episode lands on its target's shard
// clock and fires mid-window there, shard-locally.
//
// The returned Injector tracks no suspects: episode callbacks run on
// shard goroutines concurrently, so a shared refcount map would race.
// Suspect-driven recovery (Plan.Recovery) is rejected by sharded
// scenario validation for exactly this reason.
func InstallSharded(n ShardedNetwork, p Plan, seed int64) *Injector {
	inj := &Injector{plan: p}
	at := func(clk *sim.Clock, t sim.Time, fn func()) {
		if t.After(clk.Now()) {
			clk.At(t, fn)
			return
		}
		fn()
	}
	links := func(id netem.NodeID) (clk *sim.Clock, up, down *netem.Link) {
		r := n.Relay(id)
		clk = n.RelayClock(id)
		if r == nil || clk == nil {
			panic(fmt.Sprintf("faults: plan targets unknown relay %q", id))
		}
		port := r.Port()
		return clk, port.Uplink(), port.Downlink()
	}

	for i, b := range p.BurstLoss {
		clk, up, down := links(b.Relay)
		mUp := &netem.GilbertElliott{
			PGoodBad: b.PGoodBad, PBadGood: b.PBadGood,
			LossGood: b.LossGood, LossBad: b.LossBad,
			RNG: sim.NewRNG(seed, fmt.Sprintf("fault-burstloss/%d/up", i)),
		}
		mDown := &netem.GilbertElliott{
			PGoodBad: b.PGoodBad, PBadGood: b.PBadGood,
			LossGood: b.LossGood, LossBad: b.LossBad,
			RNG: sim.NewRNG(seed, fmt.Sprintf("fault-burstloss/%d/down", i)),
		}
		at(clk, b.From, func() {
			up.SetLossModel(mUp)
			down.SetLossModel(mDown)
		})
		if b.Until != 0 {
			at(clk, b.Until, func() {
				up.SetLossModel(nil)
				down.SetLossModel(nil)
			})
		}
	}

	for i, j := range p.Jitter {
		clk, up, down := links(j.Relay)
		mUp := &netem.UniformJitter{
			Amplitude: j.Amplitude, SpikeProb: j.SpikeProb, SpikeDelay: j.SpikeDelay,
			RNG: sim.NewRNG(seed, fmt.Sprintf("fault-jitter/%d/up", i)),
		}
		mDown := &netem.UniformJitter{
			Amplitude: j.Amplitude, SpikeProb: j.SpikeProb, SpikeDelay: j.SpikeDelay,
			RNG: sim.NewRNG(seed, fmt.Sprintf("fault-jitter/%d/down", i)),
		}
		at(clk, j.From, func() {
			up.SetJitter(mUp)
			down.SetJitter(mDown)
		})
		if j.Until != 0 {
			at(clk, j.Until, func() {
				up.SetJitter(nil)
				down.SetJitter(nil)
			})
		}
	}

	for _, f := range p.Flaps {
		clk, up, down := links(f.Relay)
		for i := 0; i <= f.Repeat; i++ {
			downAt := f.DownAt.Add(time.Duration(i) * f.Every)
			at(clk, downAt, func() {
				up.SetDown(true)
				down.SetDown(true)
			})
			at(clk, downAt.Add(f.UpAfter), func() {
				up.SetDown(false)
				down.SetDown(false)
			})
		}
	}

	for _, pt := range p.Partitions {
		// The two directions of a cut trunk live on different shards;
		// each direction goes down on its owner's clock at the same
		// virtual instant.
		ab, ba := n.Trunk(pt.TrunkA, pt.TrunkB), n.Trunk(pt.TrunkB, pt.TrunkA)
		if ab == nil || ba == nil {
			panic(fmt.Sprintf("faults: plan partitions unknown trunk %q-%q", pt.TrunkA, pt.TrunkB))
		}
		clkAB := n.TrunkClock(pt.TrunkA, pt.TrunkB)
		clkBA := n.TrunkClock(pt.TrunkB, pt.TrunkA)
		at(clkAB, pt.At, func() { ab.SetDown(true) })
		at(clkBA, pt.At, func() { ba.SetDown(true) })
		if pt.HealAfter > 0 {
			at(clkAB, pt.At.Add(pt.HealAfter), func() { ab.SetDown(false) })
			at(clkBA, pt.At.Add(pt.HealAfter), func() { ba.SetDown(false) })
		}
	}

	for _, d := range p.Degrades {
		d := d
		switch d.Mode {
		case DegradeHang:
			r := n.Relay(d.Relay)
			clk := n.RelayClock(d.Relay)
			if r == nil || clk == nil {
				panic(fmt.Sprintf("faults: plan targets unknown relay %q", d.Relay))
			}
			at(clk, d.At, func() { r.Hang() })
			if d.RecoverAfter > 0 {
				at(clk, d.At.Add(d.RecoverAfter), func() { r.Unhang() })
			}
		case DegradeSlow:
			clk, up, down := links(d.Relay)
			at(clk, d.At, func() {
				up.SetRate(units.DataRate(float64(up.Config().Rate) * d.RateFactor))
				down.SetRate(units.DataRate(float64(down.Config().Rate) * d.RateFactor))
			})
			if d.RecoverAfter > 0 {
				at(clk, d.At.Add(d.RecoverAfter), func() {
					up.SetRate(units.DataRate(float64(up.Config().Rate) / d.RateFactor))
					down.SetRate(units.DataRate(float64(down.Config().Rate) / d.RateFactor))
				})
			}
		}
	}
	return inj
}
