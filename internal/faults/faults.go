// Package faults is the declarative fault-injection engine: a Plan
// describes when and where the network misbehaves — bursty loss, delay
// jitter, flapping access links, backbone partitions, degraded relays —
// as plain data, and Install compiles it onto a trial's sim clock.
//
// Two rules make fault plans compose deterministically:
//
//   - Every fault source draws from its own named RNG stream (derived
//     from the trial seed and the fault's index in the plan), and the
//     netem condition models consume their streams once per frame or
//     delivery unconditionally — so enabling one fault never perturbs
//     another fault's draw order, and an empty Plan leaves every seeded
//     output byte-identical to a fault-free run.
//   - Everything is scheduled on the trial clock at Install time, so a
//     faulted trial remains a pure function of its seed regardless of
//     the worker pool that runs it.
//
// The Recovery block configures the endpoint-side stall detector that
// package scenario runs on top of an installed plan: downloads whose
// transport makes no ACK/FEEDBACK/byte progress within an RTO-derived
// deadline tear their circuit down and rebuild around the failure with
// capped exponential backoff (see DESIGN.md, "Fault model & recovery").
package faults

import (
	"fmt"
	"time"

	"circuitstart/internal/netem"
	"circuitstart/internal/sim"
)

// BurstLoss installs a Gilbert–Elliott two-state loss channel on both
// access links of a relay for a window of the trial.
type BurstLoss struct {
	// Relay names the relay whose access links take the burst loss.
	Relay netem.NodeID
	// From and Until bound the active window (Until 0 = to the horizon).
	From, Until sim.Time
	// PGoodBad and PBadGood are the per-frame state transition
	// probabilities; LossGood and LossBad the per-state loss rates.
	PGoodBad, PBadGood float64
	LossGood, LossBad  float64
}

// Jitter installs a delay jitter/spike model on both access links of a
// relay for a window of the trial.
type Jitter struct {
	Relay       netem.NodeID
	From, Until sim.Time
	// Amplitude bounds the uniform per-delivery jitter.
	Amplitude time.Duration
	// SpikeProb and SpikeDelay add occasional latency excursions.
	SpikeProb  float64
	SpikeDelay time.Duration
}

// Flap takes a relay's access links down and back up, optionally on a
// repeating schedule — the link-layer failure the overlay cannot see
// except as silence.
type Flap struct {
	Relay netem.NodeID
	// DownAt is the first down instant; UpAfter the downtime per flap.
	DownAt  sim.Time
	UpAfter time.Duration
	// Repeat adds that many further down/up cycles, spaced Every apart.
	Repeat int
	Every  time.Duration
}

// Partition takes both directions of a backbone trunk down — every
// circuit routed across it goes dark at once.
type Partition struct {
	TrunkA, TrunkB netem.SwitchID
	At             sim.Time
	// HealAfter brings the trunk back (0 = never heals).
	HealAfter time.Duration
}

// DegradeMode selects a relay degradation beyond crash-stop.
type DegradeMode int

const (
	// DegradeHang blackholes every frame the relay receives while
	// leaving it "up" as far as the scripted churn machinery can tell
	// (relay.Hang) — only endpoint stall detection escapes it.
	DegradeHang DegradeMode = iota
	// DegradeSlow multiplies the relay's access-link rates by
	// RateFactor — a limping relay that still forwards, slowly.
	DegradeSlow
)

func (m DegradeMode) String() string {
	switch m {
	case DegradeHang:
		return "hang"
	case DegradeSlow:
		return "slow"
	default:
		return fmt.Sprintf("DegradeMode(%d)", int(m))
	}
}

// Degrade schedules one relay degradation episode.
type Degrade struct {
	Relay netem.NodeID
	Mode  DegradeMode
	At    sim.Time
	// RecoverAfter ends the episode (0 = never recovers).
	RecoverAfter time.Duration
	// RateFactor is the access-rate multiplier for DegradeSlow, in
	// (0, 1]. Ignored for DegradeHang.
	RateFactor float64
}

// Recovery configures endpoint-side stall detection and circuit
// rebuild. The zero value disables recovery: faulted circuits stall
// until the horizon, exactly as the pre-recovery simulator behaved.
type Recovery struct {
	// Enabled turns the stall detector on for every download.
	Enabled bool
	// StallRTOs is the no-progress deadline in RTOs of the download's
	// recovery estimator (default 3): a download whose transport makes
	// no progress for StallRTOs × RTO is declared stalled.
	StallRTOs int
	// MaxRetries caps circuit rebuilds per download before the download
	// is abandoned (default 4).
	MaxRetries int
	// RTOMin and RTOMax clamp the recovery estimator's RTO (defaults
	// 100 ms and 10 s). Before the first RTT sample the estimator is
	// deliberately conservative (10 × RTOMin).
	RTOMin, RTOMax time.Duration
}

// Plan is a complete declarative fault schedule for one trial. The zero
// value injects nothing and keeps every execution path byte-identical
// to a fault-free run.
type Plan struct {
	BurstLoss  []BurstLoss
	Jitter     []Jitter
	Flaps      []Flap
	Partitions []Partition
	Degrades   []Degrade
	Recovery   Recovery
}

// Enabled reports whether the plan changes anything at all — any fault
// source scheduled, or endpoint recovery switched on.
func (p *Plan) Enabled() bool {
	return len(p.BurstLoss) > 0 || len(p.Jitter) > 0 || len(p.Flaps) > 0 ||
		len(p.Partitions) > 0 || len(p.Degrades) > 0 || p.Recovery.Enabled
}

// Validate checks the plan against the topology it will be installed on
// and fills Recovery defaults in place. relays is the set of relay IDs
// the topology will contain; hasTrunk reports whether a backbone trunk
// joins two switches (nil when the topology has no routed fabric).
func (p *Plan) Validate(relays map[netem.NodeID]bool, hasTrunk func(a, b netem.SwitchID) bool) error {
	prob := func(what string, v float64) error {
		if v < 0 || v > 1 {
			return fmt.Errorf("faults: %s %v outside [0,1]", what, v)
		}
		return nil
	}
	relayKnown := func(what string, id netem.NodeID) error {
		if id == "" {
			return fmt.Errorf("faults: %s names no relay", what)
		}
		if !relays[id] {
			return fmt.Errorf("faults: %s names unknown relay %q", what, id)
		}
		return nil
	}
	for i, b := range p.BurstLoss {
		what := fmt.Sprintf("burst loss %d", i)
		if err := relayKnown(what, b.Relay); err != nil {
			return err
		}
		if b.From < 0 || (b.Until != 0 && b.Until <= b.From) {
			return fmt.Errorf("faults: %s window [%v, %v)", what, b.From, b.Until)
		}
		for _, pr := range []struct {
			name string
			v    float64
		}{
			{"p-good-bad", b.PGoodBad}, {"p-bad-good", b.PBadGood},
			{"loss-good", b.LossGood}, {"loss-bad", b.LossBad},
		} {
			if err := prob(what+" "+pr.name, pr.v); err != nil {
				return err
			}
		}
	}
	for i, j := range p.Jitter {
		what := fmt.Sprintf("jitter %d", i)
		if err := relayKnown(what, j.Relay); err != nil {
			return err
		}
		if j.From < 0 || (j.Until != 0 && j.Until <= j.From) {
			return fmt.Errorf("faults: %s window [%v, %v)", what, j.From, j.Until)
		}
		if j.Amplitude < 0 || j.SpikeDelay < 0 {
			return fmt.Errorf("faults: %s negative delay", what)
		}
		if err := prob(what+" spike probability", j.SpikeProb); err != nil {
			return err
		}
		if j.Amplitude == 0 && (j.SpikeProb == 0 || j.SpikeDelay == 0) {
			return fmt.Errorf("faults: %s injects no delay", what)
		}
	}
	for i, f := range p.Flaps {
		what := fmt.Sprintf("flap %d", i)
		if err := relayKnown(what, f.Relay); err != nil {
			return err
		}
		if f.DownAt < 0 || f.UpAfter <= 0 {
			return fmt.Errorf("faults: %s down at %v for %v", what, f.DownAt, f.UpAfter)
		}
		if f.Repeat < 0 {
			return fmt.Errorf("faults: %s repeat %d", what, f.Repeat)
		}
		if f.Repeat > 0 && f.Every <= time.Duration(0) {
			return fmt.Errorf("faults: %s repeats without a period", what)
		}
		if f.Repeat > 0 && f.Every <= f.UpAfter {
			return fmt.Errorf("faults: %s period %v not longer than downtime %v", what, f.Every, f.UpAfter)
		}
	}
	for i, pt := range p.Partitions {
		what := fmt.Sprintf("partition %d", i)
		if pt.TrunkA == "" || pt.TrunkB == "" {
			return fmt.Errorf("faults: %s names only one trunk endpoint", what)
		}
		if hasTrunk == nil {
			return fmt.Errorf("faults: %s targets trunk %q-%q but the topology has no fabric", what, pt.TrunkA, pt.TrunkB)
		}
		if !hasTrunk(pt.TrunkA, pt.TrunkB) {
			return fmt.Errorf("faults: %s names unknown trunk %q-%q", what, pt.TrunkA, pt.TrunkB)
		}
		if pt.At < 0 || pt.HealAfter < 0 {
			return fmt.Errorf("faults: %s at %v heal after %v", what, pt.At, pt.HealAfter)
		}
	}
	for i, d := range p.Degrades {
		what := fmt.Sprintf("degrade %d", i)
		if err := relayKnown(what, d.Relay); err != nil {
			return err
		}
		if d.Mode != DegradeHang && d.Mode != DegradeSlow {
			return fmt.Errorf("faults: %s has unknown mode %d", what, d.Mode)
		}
		if d.At < 0 || d.RecoverAfter < 0 {
			return fmt.Errorf("faults: %s at %v recover after %v", what, d.At, d.RecoverAfter)
		}
		if d.Mode == DegradeSlow && (d.RateFactor <= 0 || d.RateFactor > 1) {
			return fmt.Errorf("faults: %s rate factor %v outside (0,1]", what, d.RateFactor)
		}
	}
	r := &p.Recovery
	if r.StallRTOs < 0 || r.MaxRetries < 0 || r.RTOMin < 0 || r.RTOMax < 0 {
		return fmt.Errorf("faults: negative recovery configuration")
	}
	if r.StallRTOs == 0 {
		r.StallRTOs = 3
	}
	if r.MaxRetries == 0 {
		r.MaxRetries = 4
	}
	if r.RTOMin == 0 {
		r.RTOMin = 100 * time.Millisecond
	}
	if r.RTOMax == 0 {
		r.RTOMax = 10 * time.Second
	}
	if r.RTOMax < r.RTOMin {
		return fmt.Errorf("faults: recovery RTO bounds %v > %v", r.RTOMin, r.RTOMax)
	}
	return nil
}
