package faults

import (
	"fmt"
	"time"

	"circuitstart/internal/netem"
	"circuitstart/internal/relay"
	"circuitstart/internal/sim"
	"circuitstart/internal/units"
)

// Network is the slice of the simulation the injector needs: the trial
// clock to schedule on, relays to degrade, and the fabric whose links it
// conditions. core.Network satisfies it; tests can stub it.
type Network interface {
	Clock() *sim.Clock
	Relay(id netem.NodeID) *relay.Relay
	Fabric() netem.Fabric
}

// Injector is an installed fault plan: every episode is compiled onto
// the trial clock, and the set of currently-faulted relays is tracked so
// recovery path selection can route around live failures.
type Injector struct {
	plan Plan
	// suspect refcounts relays currently inside a fault episode (down,
	// hung, or slowed). Overlapping episodes on one relay nest.
	suspect map[netem.NodeID]int
}

// Install compiles the plan onto n's clock. Call it after the topology
// is built (relays attached, trunks wired) and before RunUntil; episodes
// whose start instant is not in the future take effect immediately.
// seed is the trial seed — each fault entry derives its own named RNG
// streams from it, so draws never cross between entries.
//
// The plan must have passed Validate against this topology; Install
// panics on targets the topology does not have.
func Install(n Network, p Plan, seed int64) *Injector {
	inj := &Injector{plan: p, suspect: make(map[netem.NodeID]int)}
	clock := n.Clock()
	at := func(t sim.Time, fn func()) {
		if t.After(clock.Now()) {
			clock.At(t, fn)
			return
		}
		fn()
	}
	links := func(id netem.NodeID) (up, down *netem.Link) {
		r := n.Relay(id)
		if r == nil {
			panic(fmt.Sprintf("faults: plan targets unknown relay %q", id))
		}
		port := r.Port()
		return port.Uplink(), port.Downlink()
	}

	for i, b := range p.BurstLoss {
		up, down := links(b.Relay)
		mUp := &netem.GilbertElliott{
			PGoodBad: b.PGoodBad, PBadGood: b.PBadGood,
			LossGood: b.LossGood, LossBad: b.LossBad,
			RNG: sim.NewRNG(seed, fmt.Sprintf("fault-burstloss/%d/up", i)),
		}
		mDown := &netem.GilbertElliott{
			PGoodBad: b.PGoodBad, PBadGood: b.PBadGood,
			LossGood: b.LossGood, LossBad: b.LossBad,
			RNG: sim.NewRNG(seed, fmt.Sprintf("fault-burstloss/%d/down", i)),
		}
		at(b.From, func() {
			up.SetLossModel(mUp)
			down.SetLossModel(mDown)
		})
		if b.Until != 0 {
			at(b.Until, func() {
				up.SetLossModel(nil)
				down.SetLossModel(nil)
			})
		}
	}

	for i, j := range p.Jitter {
		up, down := links(j.Relay)
		mUp := &netem.UniformJitter{
			Amplitude: j.Amplitude, SpikeProb: j.SpikeProb, SpikeDelay: j.SpikeDelay,
			RNG: sim.NewRNG(seed, fmt.Sprintf("fault-jitter/%d/up", i)),
		}
		mDown := &netem.UniformJitter{
			Amplitude: j.Amplitude, SpikeProb: j.SpikeProb, SpikeDelay: j.SpikeDelay,
			RNG: sim.NewRNG(seed, fmt.Sprintf("fault-jitter/%d/down", i)),
		}
		at(j.From, func() {
			up.SetJitter(mUp)
			down.SetJitter(mDown)
		})
		if j.Until != 0 {
			at(j.Until, func() {
				up.SetJitter(nil)
				down.SetJitter(nil)
			})
		}
	}

	for _, f := range p.Flaps {
		f := f
		up, down := links(f.Relay)
		for i := 0; i <= f.Repeat; i++ {
			downAt := f.DownAt.Add(time.Duration(i) * f.Every)
			at(downAt, func() {
				up.SetDown(true)
				down.SetDown(true)
				inj.suspect[f.Relay]++
			})
			at(downAt.Add(f.UpAfter), func() {
				up.SetDown(false)
				down.SetDown(false)
				inj.suspect[f.Relay]--
			})
		}
	}

	if len(p.Partitions) > 0 {
		gf, ok := n.Fabric().(*netem.GraphFabric)
		if !ok {
			panic("faults: plan partitions a fabric without trunks")
		}
		for _, pt := range p.Partitions {
			ab, ba := gf.Trunk(pt.TrunkA, pt.TrunkB), gf.Trunk(pt.TrunkB, pt.TrunkA)
			if ab == nil || ba == nil {
				panic(fmt.Sprintf("faults: plan partitions unknown trunk %q-%q", pt.TrunkA, pt.TrunkB))
			}
			at(pt.At, func() {
				ab.SetDown(true)
				ba.SetDown(true)
			})
			if pt.HealAfter > 0 {
				at(pt.At.Add(pt.HealAfter), func() {
					ab.SetDown(false)
					ba.SetDown(false)
				})
			}
		}
	}

	for _, d := range p.Degrades {
		d := d
		switch d.Mode {
		case DegradeHang:
			r := n.Relay(d.Relay)
			if r == nil {
				panic(fmt.Sprintf("faults: plan targets unknown relay %q", d.Relay))
			}
			at(d.At, func() {
				r.Hang()
				inj.suspect[d.Relay]++
			})
			if d.RecoverAfter > 0 {
				at(d.At.Add(d.RecoverAfter), func() {
					r.Unhang()
					inj.suspect[d.Relay]--
				})
			}
		case DegradeSlow:
			up, down := links(d.Relay)
			at(d.At, func() {
				up.SetRate(units.DataRate(float64(up.Config().Rate) * d.RateFactor))
				down.SetRate(units.DataRate(float64(down.Config().Rate) * d.RateFactor))
				inj.suspect[d.Relay]++
			})
			if d.RecoverAfter > 0 {
				at(d.At.Add(d.RecoverAfter), func() {
					// Divide the live rate rather than restoring a snapshot
					// so a LinkEvent rate change during the episode survives.
					up.SetRate(units.DataRate(float64(up.Config().Rate) / d.RateFactor))
					down.SetRate(units.DataRate(float64(down.Config().Rate) / d.RateFactor))
					inj.suspect[d.Relay]--
				})
			}
		}
	}
	return inj
}

// Plan returns the installed plan (with Recovery defaults filled).
func (inj *Injector) Plan() Plan { return inj.plan }

// Suspected reports whether the relay is currently inside a fault
// episode the injector tracks (flapped down, hung, or slowed).
func (inj *Injector) Suspected(id netem.NodeID) bool {
	return inj != nil && inj.suspect[id] > 0
}

// ExcludedWith merges the currently-suspected relays into base, the
// caller's own exclusion set, and returns the union. When nothing is
// suspected it returns base itself, untouched — the no-fault path does
// no extra work and observes later mutations of base as before.
func (inj *Injector) ExcludedWith(base map[netem.NodeID]bool) map[netem.NodeID]bool {
	if inj == nil {
		return base
	}
	n := 0
	for _, c := range inj.suspect {
		if c > 0 {
			n++
		}
	}
	if n == 0 {
		return base
	}
	m := make(map[netem.NodeID]bool, len(base)+n)
	for id, bad := range base {
		if bad {
			m[id] = true
		}
	}
	for id, c := range inj.suspect {
		if c > 0 {
			m[id] = true
		}
	}
	return m
}
