package faults

import (
	"strings"
	"testing"
	"time"

	"circuitstart/internal/netem"
	"circuitstart/internal/sim"
)

func TestPlanEnabled(t *testing.T) {
	var p Plan
	if p.Enabled() {
		t.Fatal("zero plan reports enabled")
	}
	p.Recovery.Enabled = true
	if !p.Enabled() {
		t.Fatal("recovery-only plan reports disabled")
	}
	p = Plan{Flaps: []Flap{{Relay: "r", DownAt: sim.Second, UpAfter: time.Second}}}
	if !p.Enabled() {
		t.Fatal("flap plan reports disabled")
	}
}

func TestPlanValidateFillsRecoveryDefaults(t *testing.T) {
	p := Plan{Recovery: Recovery{Enabled: true}}
	if err := p.Validate(nil, nil); err != nil {
		t.Fatal(err)
	}
	r := p.Recovery
	if r.StallRTOs != 3 || r.MaxRetries != 4 ||
		r.RTOMin != 100*time.Millisecond || r.RTOMax != 10*time.Second {
		t.Fatalf("defaults not filled: %+v", r)
	}
}

func TestPlanValidateErrors(t *testing.T) {
	relays := map[netem.NodeID]bool{"r1": true, "r2": true}
	trunk := func(a, b netem.SwitchID) bool { return a == "west" && b == "east" }
	cases := []struct {
		name string
		plan Plan
		want string
	}{
		{"unknown relay", Plan{BurstLoss: []BurstLoss{{Relay: "ghost"}}}, "unknown relay"},
		{"empty relay", Plan{Jitter: []Jitter{{Amplitude: time.Millisecond}}}, "names no relay"},
		{"bad probability", Plan{BurstLoss: []BurstLoss{{Relay: "r1", PGoodBad: -0.1}}}, "p-good-bad"},
		{"inverted window", Plan{BurstLoss: []BurstLoss{{Relay: "r1", From: 2 * sim.Second, Until: sim.Second}}}, "window"},
		{"no delay jitter", Plan{Jitter: []Jitter{{Relay: "r1"}}}, "injects no delay"},
		{"flap no downtime", Plan{Flaps: []Flap{{Relay: "r1"}}}, "down at"},
		{"flap short period", Plan{Flaps: []Flap{{Relay: "r1", UpAfter: 5 * time.Second, Repeat: 1, Every: time.Second}}}, "period"},
		{"unknown trunk", Plan{Partitions: []Partition{{TrunkA: "east", TrunkB: "west"}}}, "unknown trunk"},
		{"half-named trunk", Plan{Partitions: []Partition{{TrunkA: "west"}}}, "one trunk endpoint"},
		{"bad degrade mode", Plan{Degrades: []Degrade{{Relay: "r1", Mode: DegradeMode(9)}}}, "unknown mode"},
		{"bad rate factor", Plan{Degrades: []Degrade{{Relay: "r1", Mode: DegradeSlow, RateFactor: 1.5}}}, "rate factor"},
		{"negative recovery", Plan{Recovery: Recovery{Enabled: true, MaxRetries: -1}}, "negative recovery"},
		{"inverted rto", Plan{Recovery: Recovery{Enabled: true, RTOMin: time.Second, RTOMax: time.Millisecond}}, "RTO bounds"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.plan.Validate(relays, trunk)
			if err == nil {
				t.Fatal("invalid plan accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
	// Partitions on a topology with no fabric at all.
	p := Plan{Partitions: []Partition{{TrunkA: "west", TrunkB: "east"}}}
	if err := p.Validate(relays, nil); err == nil || !strings.Contains(err.Error(), "no fabric") {
		t.Fatalf("partition without fabric: err = %v", err)
	}
}

func TestParseSpecRoundTrip(t *testing.T) {
	spec := `{
		"burst_loss": [{"relay": "r1", "from_s": 2, "until_s": 10, "p_good_bad": 0.01, "p_bad_good": 0.1, "loss_bad": 0.5}],
		"jitter": [{"relay": "r2", "amplitude_ms": 5, "spike_prob": 0.02, "spike_ms": 50}],
		"flaps": [{"relay": "r1", "down_at_s": 5, "up_after_s": 3, "repeat": 2, "every_s": 20}],
		"partitions": [{"trunk_a": "west", "trunk_b": "east", "at_s": 30, "heal_after_s": 10}],
		"degrades": [{"relay": "r2", "mode": "slow", "at_s": 5, "recover_after_s": 20, "rate_factor": 0.1}],
		"recovery": {"enabled": true, "max_retries": 8, "rto_min_ms": 50, "rto_max_ms": 2000}
	}`
	p, err := ParseSpec([]byte(spec))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.BurstLoss) != 1 || p.BurstLoss[0].From != 2*sim.Second || p.BurstLoss[0].LossBad != 0.5 {
		t.Fatalf("burst loss = %+v", p.BurstLoss)
	}
	if len(p.Jitter) != 1 || p.Jitter[0].Amplitude != 5*time.Millisecond || p.Jitter[0].SpikeDelay != 50*time.Millisecond {
		t.Fatalf("jitter = %+v", p.Jitter)
	}
	if len(p.Flaps) != 1 || p.Flaps[0].Every != 20*time.Second {
		t.Fatalf("flaps = %+v", p.Flaps)
	}
	if len(p.Partitions) != 1 || p.Partitions[0].HealAfter != 10*time.Second {
		t.Fatalf("partitions = %+v", p.Partitions)
	}
	if len(p.Degrades) != 1 || p.Degrades[0].Mode != DegradeSlow || p.Degrades[0].RateFactor != 0.1 {
		t.Fatalf("degrades = %+v", p.Degrades)
	}
	if !p.Recovery.Enabled || p.Recovery.MaxRetries != 8 || p.Recovery.RTOMin != 50*time.Millisecond {
		t.Fatalf("recovery = %+v", p.Recovery)
	}
	relays := map[netem.NodeID]bool{"r1": true, "r2": true}
	trunk := func(a, b netem.SwitchID) bool { return true }
	if err := p.Validate(relays, trunk); err != nil {
		t.Fatal(err)
	}
}

func TestParseSpecErrors(t *testing.T) {
	cases := []string{
		`{"bogus": 1}`, // unknown field
		`{"degrades": [{"relay": "r1", "mode": "melt"}]}`, // unknown mode
		`not json`,
	}
	for i, spec := range cases {
		if _, err := ParseSpec([]byte(spec)); err == nil {
			t.Errorf("case %d accepted: %s", i, spec)
		}
	}
}

func TestPresets(t *testing.T) {
	relays := []netem.NodeID{"a", "b", "c", "d"}
	relaySet := map[netem.NodeID]bool{"a": true, "b": true, "c": true, "d": true}
	for _, name := range PresetNames() {
		p, err := Preset(name, relays)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := p.Validate(relaySet, nil); err != nil {
			t.Fatalf("%s does not validate: %v", name, err)
		}
		if name != "none" && !p.Enabled() {
			t.Fatalf("%s renders a disabled plan", name)
		}
	}
	if p, _ := Preset("none", relays); p.Enabled() {
		t.Fatal("none preset injects something")
	}
	if _, err := Preset("meteor", relays); err == nil {
		t.Fatal("unknown preset accepted")
	}
	// Presets degrade gracefully on small topologies: a single relay is
	// enough for every preset to validate.
	one := []netem.NodeID{"solo"}
	for _, name := range PresetNames() {
		p, err := Preset(name, one)
		if err != nil {
			t.Fatalf("%s on one relay: %v", name, err)
		}
		if err := p.Validate(map[netem.NodeID]bool{"solo": true}, nil); err != nil {
			t.Fatalf("%s on one relay does not validate: %v", name, err)
		}
	}
}

func TestExcludedWith(t *testing.T) {
	var inj *Injector
	base := map[netem.NodeID]bool{"dead": true}
	if got := inj.ExcludedWith(base); len(got) != 1 || !got["dead"] {
		t.Fatalf("nil injector ExcludedWith = %v", got)
	}
	inj = &Injector{suspect: map[netem.NodeID]int{}}
	// No suspects: the base map must come back untouched (same map, no
	// copy) so the fault-free path allocates nothing.
	if got := inj.ExcludedWith(base); len(got) != 1 {
		t.Fatalf("ExcludedWith with no suspects = %v", got)
	}
	inj.suspect["hung"] = 1
	got := inj.ExcludedWith(base)
	if !got["dead"] || !got["hung"] {
		t.Fatalf("merged exclusion = %v", got)
	}
	if base["hung"] {
		t.Fatal("ExcludedWith mutated the base map")
	}
}
