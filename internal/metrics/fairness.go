package metrics

// JainIndex returns Jain's fairness index over the samples:
// (Σx)² / (n·Σx²). It is 1 when every sample is equal, 1/n when one
// sample dwarfs the rest, and scale-invariant in between — the
// standard single-number fairness summary for per-flow allocations.
// The overload experiments apply it to per-circuit TTLB, where an
// index near 1 means interactive and bulk circuits finished in
// comparable time relative to each other.
//
// An empty sample set (or one summing to zero) returns 0: no
// allocation happened, so no fairness claim can be made.
func JainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// JainIndex returns Jain's fairness index over the distribution's
// samples (per-circuit TTLB aggregation: add one sample per circuit,
// then summarize).
func (d *Distribution) JainIndex() float64 { return JainIndex(d.samples) }
