// Package metrics collects and summarizes experiment measurements:
// time-stamped series (e.g. a source's cwnd over virtual time), empirical
// distributions with quantiles and CDFs (e.g. time-to-last-byte over 50
// circuits), and compact summary statistics.
//
// All containers are plain in-memory values with deterministic iteration
// order, so experiment output is reproducible byte-for-byte given a seed.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"time"

	"circuitstart/internal/sim"
)

// Point is one time-stamped sample of a series.
type Point struct {
	At    sim.Time
	Value float64
}

// Series is an append-only time series. The zero value is ready to use.
type Series struct {
	name   string
	points []Point
}

// NewSeries returns an empty series with a diagnostic name.
func NewSeries(name string) *Series { return &Series{name: name} }

// Name returns the series' name.
func (s *Series) Name() string { return s.name }

// Record appends a sample. Samples must be appended in non-decreasing
// time order — the simulator's single-threaded clock guarantees this for
// callers that record as events happen; violating it is a logic error.
func (s *Series) Record(at sim.Time, v float64) {
	if n := len(s.points); n > 0 && at < s.points[n-1].At {
		panic(fmt.Sprintf("metrics: series %q sample at %v before last %v", s.name, at, s.points[n-1].At))
	}
	s.points = append(s.points, Point{At: at, Value: v})
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.points) }

// Points returns the underlying samples. The slice is shared; callers
// must not mutate it.
func (s *Series) Points() []Point { return s.points }

// At returns the series value in effect at time t under step
// (sample-and-hold) interpolation, i.e. the value of the latest sample
// at or before t. ok is false when t precedes the first sample.
func (s *Series) At(t sim.Time) (v float64, ok bool) {
	i := sort.Search(len(s.points), func(i int) bool { return s.points[i].At > t })
	if i == 0 {
		return 0, false
	}
	return s.points[i-1].Value, true
}

// Last returns the most recent sample. ok is false for an empty series.
func (s *Series) Last() (Point, bool) {
	if len(s.points) == 0 {
		return Point{}, false
	}
	return s.points[len(s.points)-1], true
}

// Max returns the largest value observed. ok is false for an empty series.
func (s *Series) Max() (float64, bool) {
	if len(s.points) == 0 {
		return 0, false
	}
	m := math.Inf(-1)
	for _, p := range s.points {
		if p.Value > m {
			m = p.Value
		}
	}
	return m, true
}

// Min returns the smallest value observed. ok is false for an empty series.
func (s *Series) Min() (float64, bool) {
	if len(s.points) == 0 {
		return 0, false
	}
	m := math.Inf(1)
	for _, p := range s.points {
		if p.Value < m {
			m = p.Value
		}
	}
	return m, true
}

// TimeAverage returns the step-interpolated mean of the series between
// its first sample and horizon: each sample holds until the next one (or
// the horizon). ok is false when the series is empty or the horizon does
// not extend past the first sample.
func (s *Series) TimeAverage(horizon sim.Time) (float64, bool) {
	if len(s.points) == 0 || horizon <= s.points[0].At {
		return 0, false
	}
	var weighted float64
	for i, p := range s.points {
		if p.At >= horizon {
			break
		}
		end := horizon
		if i+1 < len(s.points) && s.points[i+1].At < horizon {
			end = s.points[i+1].At
		}
		weighted += p.Value * float64(end-p.At)
	}
	total := float64(horizon - s.points[0].At)
	return weighted / total, true
}

// SettleTime returns the earliest time from which the series stays
// within ±tol of target until its end. ok is false if it never settles
// or the series is empty. Experiments use it to measure how fast a cwnd
// trace converges onto the model's optimal window.
func (s *Series) SettleTime(target, tol float64) (sim.Time, bool) {
	if len(s.points) == 0 {
		return 0, false
	}
	settled := sim.Time(-1)
	for _, p := range s.points {
		within := math.Abs(p.Value-target) <= tol
		if within && settled < 0 {
			settled = p.At
		}
		if !within {
			settled = -1
		}
	}
	if settled < 0 {
		return 0, false
	}
	return settled, true
}

// ConvergeTime returns the earliest time from which the series is
// within ±tol of target for at least (1 − outlierFrac) of the remaining
// time, under step interpolation. Unlike SettleTime it tolerates brief
// excursions — a congestion window that periodically re-probes still
// counts as converged. ok is false when no such point exists.
func (s *Series) ConvergeTime(target, tol, outlierFrac float64) (sim.Time, bool) {
	n := len(s.points)
	if n == 0 {
		return 0, false
	}
	end := s.points[n-1].At
	within := func(v float64) bool { return math.Abs(v-target) <= tol }
	// Suffix sums of time spent outside the band, step-interpolated.
	outside := make([]time.Duration, n+1) // outside[i] = time outside from point i to end
	for i := n - 1; i >= 0; i-- {
		segEnd := end
		if i+1 < n {
			segEnd = s.points[i+1].At
		}
		d := segEnd.Sub(s.points[i].At)
		outside[i] = outside[i+1]
		if !within(s.points[i].Value) {
			outside[i] += d
		}
	}
	for i, p := range s.points {
		if !within(p.Value) {
			continue
		}
		total := end.Sub(p.At)
		if total <= 0 {
			// Last sample: converged iff it is in the band.
			return p.At, true
		}
		if float64(outside[i]) <= outlierFrac*float64(total) {
			return p.At, true
		}
	}
	return 0, false
}

// Overshoot returns the maximum amount by which the series exceeds
// target, and when that peak occurred. A non-positive overshoot means
// the series never exceeded the target.
func (s *Series) Overshoot(target float64) (amount float64, at sim.Time) {
	amount = math.Inf(-1)
	for _, p := range s.points {
		if over := p.Value - target; over > amount {
			amount, at = over, p.At
		}
	}
	if math.IsInf(amount, -1) {
		return 0, 0
	}
	return amount, at
}
