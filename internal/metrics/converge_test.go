package metrics

import "testing"

func TestConvergeTimeBasic(t *testing.T) {
	s := NewSeries("cwnd")
	s.Record(ms(0), 2)
	s.Record(ms(10), 64) // overshoot
	s.Record(ms(20), 40) // lands in band (target 38 ± 19)
	s.Record(ms(100), 39)

	at, ok := s.ConvergeTime(38, 19, 0.2)
	if !ok || at != ms(20) {
		t.Fatalf("ConvergeTime = %v, %v; want 20ms", at, ok)
	}
}

func TestConvergeTimeToleratesBriefExcursion(t *testing.T) {
	// In band from 20ms, one 10ms probe blip out of 200ms remaining:
	// 5% outside < 20% tolerance — still converged at 20ms.
	s := NewSeries("cwnd")
	s.Record(ms(0), 2)
	s.Record(ms(20), 38)
	s.Record(ms(100), 90) // probe blip
	s.Record(ms(110), 38)
	s.Record(ms(220), 38)

	at, ok := s.ConvergeTime(38, 19, 0.2)
	if !ok || at != ms(20) {
		t.Fatalf("ConvergeTime = %v, %v; want 20ms", at, ok)
	}
	// SettleTime, by contrast, resets on the blip.
	if at, _ := s.SettleTime(38, 19); at == ms(20) {
		t.Fatal("SettleTime should not tolerate the excursion")
	}
}

func TestConvergeTimeRejectsSustainedExcursion(t *testing.T) {
	// Out of band for half the remaining time: not converged at 20ms,
	// converged only at the final return.
	s := NewSeries("cwnd")
	s.Record(ms(0), 2)
	s.Record(ms(20), 38)
	s.Record(ms(40), 90)
	s.Record(ms(140), 38)
	s.Record(ms(160), 38)

	at, ok := s.ConvergeTime(38, 19, 0.2)
	if !ok {
		t.Fatal("never converged")
	}
	if at == ms(20) {
		t.Fatal("converged at 20ms despite 100/140ms outside the band")
	}
	if at != ms(140) {
		t.Fatalf("ConvergeTime = %v, want 140ms", at)
	}
}

func TestConvergeTimeNever(t *testing.T) {
	s := NewSeries("cwnd")
	s.Record(ms(0), 2)
	s.Record(ms(10), 4)
	if _, ok := s.ConvergeTime(100, 5, 0.2); ok {
		t.Fatal("converged onto unreachable target")
	}
	if _, ok := NewSeries("e").ConvergeTime(1, 1, 0.2); ok {
		t.Fatal("empty series converged")
	}
}

func TestConvergeTimeLastSample(t *testing.T) {
	// A single in-band final sample counts (zero remaining time).
	s := NewSeries("cwnd")
	s.Record(ms(0), 100)
	s.Record(ms(10), 38)
	at, ok := s.ConvergeTime(38, 5, 0)
	if !ok || at != ms(10) {
		t.Fatalf("ConvergeTime = %v, %v", at, ok)
	}
}

func TestConvergeTimeZeroTolerance(t *testing.T) {
	// outlierFrac 0 reduces to strict settling.
	s := NewSeries("cwnd")
	s.Record(ms(0), 38)
	s.Record(ms(10), 90)
	s.Record(ms(20), 38)
	at, ok := s.ConvergeTime(38, 5, 0)
	if !ok || at != ms(20) {
		t.Fatalf("ConvergeTime = %v, %v; want 20ms", at, ok)
	}
}
