package metrics

import (
	"math"
	"testing"
)

func TestJainIndex(t *testing.T) {
	cases := []struct {
		name string
		xs   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"all_zero", []float64{0, 0, 0}, 0},
		{"single", []float64{3.5}, 1},
		{"equal", []float64{2, 2, 2, 2}, 1},
		{"one_dominates", []float64{1, 0, 0, 0}, 0.25}, // 1/n
		{"ratio_four", []float64{1, 4}, 25.0 / 34.0},
		{"mixed", []float64{1, 2, 3}, 36.0 / 42.0},
		{"scale_invariant", []float64{10, 40}, 25.0 / 34.0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := JainIndex(tc.xs)
			if math.Abs(got-tc.want) > 1e-12 {
				t.Fatalf("JainIndex(%v) = %v, want %v", tc.xs, got, tc.want)
			}
		})
	}
}

func TestDistributionJainIndex(t *testing.T) {
	d := NewDistribution("ttlb")
	for _, v := range []float64{1, 2, 3} {
		d.Add(v)
	}
	if got, want := d.JainIndex(), 36.0/42.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("JainIndex = %v, want %v", got, want)
	}
	// Quantile queries sort the samples in place; the index must not
	// depend on sample order.
	d.Median()
	if got, want := d.JainIndex(), 36.0/42.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("JainIndex after sort = %v, want %v", got, want)
	}
}
