package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Distribution accumulates scalar samples and answers quantile and CDF
// queries over them. The zero value is ready to use.
type Distribution struct {
	name    string
	samples []float64
	sorted  bool
}

// NewDistribution returns an empty distribution with a diagnostic name.
func NewDistribution(name string) *Distribution { return &Distribution{name: name} }

// Name returns the distribution's name.
func (d *Distribution) Name() string { return d.name }

// Add records one sample. NaN is rejected: it silently poisons every
// downstream statistic.
func (d *Distribution) Add(v float64) {
	if math.IsNaN(v) {
		panic(fmt.Sprintf("metrics: NaN sample in distribution %q", d.name))
	}
	d.samples = append(d.samples, v)
	d.sorted = false
}

// Len returns the sample count.
func (d *Distribution) Len() int { return len(d.samples) }

func (d *Distribution) ensureSorted() {
	if !d.sorted {
		sort.Float64s(d.samples)
		d.sorted = true
	}
}

// Sorted returns the samples in ascending order. The slice is shared;
// callers must not mutate it.
func (d *Distribution) Sorted() []float64 {
	d.ensureSorted()
	return d.samples
}

// Mean returns the arithmetic mean, or 0 for an empty distribution.
func (d *Distribution) Mean() float64 {
	if len(d.samples) == 0 {
		return 0
	}
	var sum float64
	for _, v := range d.samples {
		sum += v
	}
	return sum / float64(len(d.samples))
}

// StdDev returns the population standard deviation, or 0 with fewer than
// two samples.
func (d *Distribution) StdDev() float64 {
	n := len(d.samples)
	if n < 2 {
		return 0
	}
	m := d.Mean()
	var ss float64
	for _, v := range d.samples {
		dv := v - m
		ss += dv * dv
	}
	return math.Sqrt(ss / float64(n))
}

// Min returns the smallest sample, or 0 when empty.
func (d *Distribution) Min() float64 {
	if len(d.samples) == 0 {
		return 0
	}
	d.ensureSorted()
	return d.samples[0]
}

// Max returns the largest sample, or 0 when empty.
func (d *Distribution) Max() float64 {
	if len(d.samples) == 0 {
		return 0
	}
	d.ensureSorted()
	return d.samples[len(d.samples)-1]
}

// Quantile returns the q-th quantile (0 <= q <= 1) under linear
// interpolation between order statistics (type-7, the numpy default).
// It panics on an empty distribution or q outside [0, 1].
func (d *Distribution) Quantile(q float64) float64 {
	if len(d.samples) == 0 {
		panic(fmt.Sprintf("metrics: quantile of empty distribution %q", d.name))
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("metrics: quantile %v outside [0,1]", q))
	}
	d.ensureSorted()
	if len(d.samples) == 1 {
		return d.samples[0]
	}
	pos := q * float64(len(d.samples)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return d.samples[lo]
	}
	frac := pos - float64(lo)
	return d.samples[lo]*(1-frac) + d.samples[hi]*frac
}

// Median returns the 0.5 quantile.
func (d *Distribution) Median() float64 { return d.Quantile(0.5) }

// CDFAt returns the empirical cumulative probability P(X <= x).
func (d *Distribution) CDFAt(x float64) float64 {
	if len(d.samples) == 0 {
		return 0
	}
	d.ensureSorted()
	i := sort.SearchFloat64s(d.samples, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(d.samples))
}

// CDFPoint is one step of an empirical CDF.
type CDFPoint struct {
	Value float64 // sample value (x axis)
	P     float64 // cumulative probability (y axis)
}

// CDF returns the full empirical CDF as (value, probability) steps, one
// per sample, suitable for plotting against the paper's Figure 1 lower
// panel.
func (d *Distribution) CDF() []CDFPoint {
	d.ensureSorted()
	out := make([]CDFPoint, len(d.samples))
	n := float64(len(d.samples))
	for i, v := range d.samples {
		out[i] = CDFPoint{Value: v, P: float64(i+1) / n}
	}
	return out
}

// Summary is a compact five-number-plus description of a distribution.
type Summary struct {
	Name   string
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	P25    float64
	Median float64
	P75    float64
	P90    float64
	P99    float64
	Max    float64
}

// Summarize computes a Summary. Quantile fields are zero when empty.
func (d *Distribution) Summarize() Summary {
	s := Summary{Name: d.name, N: d.Len(), Mean: d.Mean(), StdDev: d.StdDev()}
	if d.Len() == 0 {
		return s
	}
	s.Min = d.Min()
	s.P25 = d.Quantile(0.25)
	s.Median = d.Median()
	s.P75 = d.Quantile(0.75)
	s.P90 = d.Quantile(0.90)
	s.P99 = d.Quantile(0.99)
	s.Max = d.Max()
	return s
}

func (s Summary) String() string {
	return fmt.Sprintf("%s: n=%d mean=%.4g sd=%.4g min=%.4g p50=%.4g p90=%.4g max=%.4g",
		s.Name, s.N, s.Mean, s.StdDev, s.Min, s.Median, s.P90, s.Max)
}
