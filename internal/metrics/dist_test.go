package metrics

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestDistributionBasics(t *testing.T) {
	d := NewDistribution("ttlb")
	if d.Name() != "ttlb" {
		t.Fatalf("Name = %q", d.Name())
	}
	if d.Len() != 0 || d.Mean() != 0 || d.StdDev() != 0 {
		t.Fatal("empty distribution not zeroed")
	}
	for _, v := range []float64{4, 1, 3, 2} {
		d.Add(v)
	}
	if d.Len() != 4 {
		t.Fatalf("Len = %d", d.Len())
	}
	if d.Mean() != 2.5 {
		t.Fatalf("Mean = %v, want 2.5", d.Mean())
	}
	if got := d.Min(); got != 1 {
		t.Fatalf("Min = %v", got)
	}
	if got := d.Max(); got != 4 {
		t.Fatalf("Max = %v", got)
	}
	wantSD := math.Sqrt((2.25 + 0.25 + 0.25 + 2.25) / 4)
	if math.Abs(d.StdDev()-wantSD) > 1e-12 {
		t.Fatalf("StdDev = %v, want %v", d.StdDev(), wantSD)
	}
}

func TestDistributionAddNaNPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add(NaN) did not panic")
		}
	}()
	NewDistribution("x").Add(math.NaN())
}

func TestQuantileInterpolation(t *testing.T) {
	d := NewDistribution("q")
	for _, v := range []float64{10, 20, 30, 40} {
		d.Add(v)
	}
	cases := []struct{ q, want float64 }{
		{0, 10}, {1, 40}, {0.5, 25}, {0.25, 17.5}, {1.0 / 3.0, 20},
	}
	for _, c := range cases {
		if got := d.Quantile(c.q); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if d.Median() != 25 {
		t.Errorf("Median = %v", d.Median())
	}
}

func TestQuantileSingleSample(t *testing.T) {
	d := NewDistribution("one")
	d.Add(7)
	for _, q := range []float64{0, 0.3, 0.5, 1} {
		if got := d.Quantile(q); got != 7 {
			t.Errorf("Quantile(%v) = %v, want 7", q, got)
		}
	}
}

func TestQuantilePanics(t *testing.T) {
	t.Run("empty", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("no panic")
			}
		}()
		NewDistribution("e").Quantile(0.5)
	})
	t.Run("range", func(t *testing.T) {
		d := NewDistribution("r")
		d.Add(1)
		defer func() {
			if recover() == nil {
				t.Fatal("no panic")
			}
		}()
		d.Quantile(1.5)
	})
}

func TestCDFAt(t *testing.T) {
	d := NewDistribution("cdf")
	for _, v := range []float64{1, 2, 2, 3} {
		d.Add(v)
	}
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {1.9, 0.25}, {2, 0.75}, {3, 1}, {99, 1},
	}
	for _, c := range cases {
		if got := d.CDFAt(c.x); got != c.want {
			t.Errorf("CDFAt(%v) = %v, want %v", c.x, got, c.want)
		}
	}
	if NewDistribution("e").CDFAt(1) != 0 {
		t.Error("empty CDFAt != 0")
	}
}

func TestCDFSteps(t *testing.T) {
	d := NewDistribution("cdf")
	for _, v := range []float64{3, 1, 2} {
		d.Add(v)
	}
	pts := d.CDF()
	if len(pts) != 3 {
		t.Fatalf("CDF len = %d", len(pts))
	}
	wantV := []float64{1, 2, 3}
	wantP := []float64{1.0 / 3, 2.0 / 3, 1}
	for i := range pts {
		if pts[i].Value != wantV[i] || math.Abs(pts[i].P-wantP[i]) > 1e-12 {
			t.Errorf("CDF[%d] = %+v", i, pts[i])
		}
	}
}

func TestSummarize(t *testing.T) {
	d := NewDistribution("s")
	for i := 1; i <= 100; i++ {
		d.Add(float64(i))
	}
	s := d.Summarize()
	if s.N != 100 || s.Min != 1 || s.Max != 100 {
		t.Fatalf("Summary = %+v", s)
	}
	if math.Abs(s.Mean-50.5) > 1e-9 || math.Abs(s.Median-50.5) > 1e-9 {
		t.Fatalf("Mean/Median = %v/%v", s.Mean, s.Median)
	}
	if s.P90 <= s.P75 || s.P99 <= s.P90 {
		t.Fatalf("quantiles not ordered: %+v", s)
	}
	if s.String() == "" {
		t.Fatal("empty String()")
	}
	empty := NewDistribution("e").Summarize()
	if empty.N != 0 || empty.Max != 0 {
		t.Fatalf("empty Summary = %+v", empty)
	}
}

// Property: quantiles are monotone in q and bounded by [Min, Max].
func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []float32, a, b uint8) bool {
		if len(raw) == 0 {
			return true
		}
		d := NewDistribution("p")
		for _, v := range raw {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				continue
			}
			d.Add(float64(v))
		}
		if d.Len() == 0 {
			return true
		}
		qa := float64(a) / 255
		qb := float64(b) / 255
		if qa > qb {
			qa, qb = qb, qa
		}
		va, vb := d.Quantile(qa), d.Quantile(qb)
		return va <= vb && va >= d.Min() && vb <= d.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: CDFAt agrees with a direct count of samples <= x.
func TestCDFAtMatchesCountProperty(t *testing.T) {
	f := func(raw []int8, probe int8) bool {
		if len(raw) == 0 {
			return true
		}
		d := NewDistribution("p")
		for _, v := range raw {
			d.Add(float64(v))
		}
		x := float64(probe)
		count := 0
		for _, v := range raw {
			if float64(v) <= x {
				count++
			}
		}
		want := float64(count) / float64(len(raw))
		return math.Abs(d.CDFAt(x)-want) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: Sorted returns a permutation of the input in ascending order.
func TestSortedProperty(t *testing.T) {
	f := func(raw []float32) bool {
		d := NewDistribution("p")
		in := make([]float64, 0, len(raw))
		for _, v := range raw {
			if math.IsNaN(float64(v)) {
				continue
			}
			d.Add(float64(v))
			in = append(in, float64(v))
		}
		got := d.Sorted()
		if !sort.Float64sAreSorted(got) {
			return false
		}
		sort.Float64s(in)
		if len(in) != len(got) {
			return false
		}
		for i := range in {
			if in[i] != got[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
