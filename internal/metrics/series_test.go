package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"circuitstart/internal/sim"
)

func ms(v int) sim.Time { return sim.Time(v) * sim.Millisecond }

func TestSeriesRecordAndAccessors(t *testing.T) {
	s := NewSeries("cwnd")
	if s.Name() != "cwnd" {
		t.Fatalf("Name = %q", s.Name())
	}
	if s.Len() != 0 {
		t.Fatalf("empty series Len = %d", s.Len())
	}
	if _, ok := s.Last(); ok {
		t.Fatal("Last on empty series reported ok")
	}
	s.Record(ms(1), 2)
	s.Record(ms(2), 4)
	s.Record(ms(2), 8) // same instant is allowed
	s.Record(ms(5), 3)
	if s.Len() != 4 {
		t.Fatalf("Len = %d, want 4", s.Len())
	}
	last, ok := s.Last()
	if !ok || last.Value != 3 || last.At != ms(5) {
		t.Fatalf("Last = %+v, %v", last, ok)
	}
}

func TestSeriesRecordOutOfOrderPanics(t *testing.T) {
	s := NewSeries("x")
	s.Record(ms(10), 1)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-order Record did not panic")
		}
	}()
	s.Record(ms(9), 2)
}

func TestSeriesAtStepInterpolation(t *testing.T) {
	s := NewSeries("x")
	s.Record(ms(10), 1)
	s.Record(ms(20), 2)
	s.Record(ms(30), 3)

	if _, ok := s.At(ms(9)); ok {
		t.Fatal("At before first sample reported ok")
	}
	cases := []struct {
		t    sim.Time
		want float64
	}{
		{ms(10), 1}, {ms(15), 1}, {ms(20), 2}, {ms(29), 2}, {ms(30), 3}, {ms(1000), 3},
	}
	for _, c := range cases {
		got, ok := s.At(c.t)
		if !ok || got != c.want {
			t.Errorf("At(%v) = %v, %v; want %v", c.t, got, ok, c.want)
		}
	}
}

func TestSeriesMinMax(t *testing.T) {
	s := NewSeries("x")
	if _, ok := s.Max(); ok {
		t.Fatal("Max of empty series reported ok")
	}
	if _, ok := s.Min(); ok {
		t.Fatal("Min of empty series reported ok")
	}
	for i, v := range []float64{3, -1, 7, 2} {
		s.Record(ms(i), v)
	}
	if mx, _ := s.Max(); mx != 7 {
		t.Errorf("Max = %v, want 7", mx)
	}
	if mn, _ := s.Min(); mn != -1 {
		t.Errorf("Min = %v, want -1", mn)
	}
}

func TestSeriesTimeAverage(t *testing.T) {
	s := NewSeries("x")
	if _, ok := s.TimeAverage(ms(10)); ok {
		t.Fatal("TimeAverage of empty series reported ok")
	}
	s.Record(ms(0), 2)
	s.Record(ms(10), 4)
	// 2 for 10ms, then 4 for 10ms → mean 3 over [0, 20ms).
	got, ok := s.TimeAverage(ms(20))
	if !ok || math.Abs(got-3) > 1e-12 {
		t.Fatalf("TimeAverage = %v, %v; want 3", got, ok)
	}
	// Horizon before the second sample: only the first value counts.
	got, ok = s.TimeAverage(ms(5))
	if !ok || got != 2 {
		t.Fatalf("TimeAverage(5ms) = %v, %v; want 2", got, ok)
	}
	if _, ok := s.TimeAverage(ms(0)); ok {
		t.Fatal("TimeAverage at first sample reported ok")
	}
}

func TestSeriesSettleTime(t *testing.T) {
	s := NewSeries("cwnd")
	s.Record(ms(0), 2)
	s.Record(ms(10), 8)
	s.Record(ms(20), 32) // overshoot
	s.Record(ms(30), 10) // compensation lands near target
	s.Record(ms(40), 11)

	at, ok := s.SettleTime(10, 1.5)
	if !ok || at != ms(30) {
		t.Fatalf("SettleTime = %v, %v; want 30ms", at, ok)
	}
	if _, ok := s.SettleTime(100, 1); ok {
		t.Fatal("SettleTime for unreachable target reported ok")
	}
	// Re-leaving the band resets the settle point.
	s.Record(ms(50), 50)
	if _, ok := s.SettleTime(10, 1.5); ok {
		t.Fatal("series that left the band again reported settled")
	}
}

func TestSeriesSettleTimeEmpty(t *testing.T) {
	if _, ok := NewSeries("x").SettleTime(1, 1); ok {
		t.Fatal("empty series reported settled")
	}
}

func TestSeriesOvershoot(t *testing.T) {
	s := NewSeries("cwnd")
	s.Record(ms(0), 2)
	s.Record(ms(10), 64)
	s.Record(ms(20), 10)
	amt, at := s.Overshoot(10)
	if amt != 54 || at != ms(10) {
		t.Fatalf("Overshoot = %v at %v; want 54 at 10ms", amt, at)
	}
	// Never exceeding the target yields a non-positive amount.
	amt, _ = s.Overshoot(100)
	if amt > 0 {
		t.Fatalf("Overshoot above max = %v, want <= 0", amt)
	}
	amt, at = NewSeries("e").Overshoot(1)
	if amt != 0 || at != 0 {
		t.Fatalf("empty Overshoot = %v, %v", amt, at)
	}
}

// Property: At(t) always returns the value of the latest sample with
// timestamp <= t, for any monotone sample set.
func TestSeriesAtMatchesLinearScan(t *testing.T) {
	f := func(raw []uint16, probe uint16) bool {
		s := NewSeries("p")
		at := sim.Time(0)
		type sample struct {
			at sim.Time
			v  float64
		}
		var samples []sample
		for i, r := range raw {
			at += sim.Time(r % 97)
			v := float64(i)
			s.Record(at, v)
			samples = append(samples, sample{at, v})
		}
		tq := sim.Time(probe)
		want, wantOK := 0.0, false
		for _, smp := range samples {
			if smp.at <= tq {
				want, wantOK = smp.v, true
			}
		}
		got, ok := s.At(tq)
		if ok != wantOK {
			return false
		}
		return !ok || got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
