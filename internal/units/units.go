// Package units provides data-size and data-rate types with the
// transmission-time arithmetic the network emulator is built on.
//
// Keeping sizes and rates as distinct types (rather than bare int64 /
// float64) prevents the classic bits-vs-bytes and per-second-vs-per-ms
// unit bugs that plague network simulators.
package units

import (
	"fmt"
	"math"
	"time"
)

// DataSize is an amount of data in bytes.
type DataSize int64

// Data size constants.
const (
	Byte     DataSize = 1
	Kilobyte          = 1000 * Byte
	Kibibyte          = 1024 * Byte
	Megabyte          = 1000 * Kilobyte
	Mebibyte          = 1024 * Kibibyte
	Gigabyte          = 1000 * Megabyte
)

// Bytes returns the size as a raw byte count.
func (s DataSize) Bytes() int64 { return int64(s) }

// Bits returns the size in bits.
func (s DataSize) Bits() int64 { return int64(s) * 8 }

// Kilobytes returns the size in kB (1000 bytes), as used for the paper's
// cwnd axis ("source cwnd [KB]").
func (s DataSize) Kilobytes() float64 { return float64(s) / 1000 }

// Megabytes returns the size in MB.
func (s DataSize) Megabytes() float64 { return float64(s) / 1e6 }

func (s DataSize) String() string {
	switch {
	case s >= Gigabyte:
		return fmt.Sprintf("%.2fGB", float64(s)/float64(Gigabyte))
	case s >= Megabyte:
		return fmt.Sprintf("%.2fMB", float64(s)/float64(Megabyte))
	case s >= Kilobyte:
		return fmt.Sprintf("%.2fkB", float64(s)/float64(Kilobyte))
	default:
		return fmt.Sprintf("%dB", int64(s))
	}
}

// DataRate is a transmission rate in bits per second.
type DataRate int64

// Data rate constants.
const (
	BitPerSecond  DataRate = 1
	KilobitPerSec          = 1000 * BitPerSecond
	MegabitPerSec          = 1000 * KilobitPerSec
	GigabitPerSec          = 1000 * MegabitPerSec
)

// Mbps constructs a rate from megabits per second.
func Mbps(v float64) DataRate { return DataRate(v * float64(MegabitPerSec)) }

// Kbps constructs a rate from kilobits per second.
func Kbps(v float64) DataRate { return DataRate(v * float64(KilobitPerSec)) }

// BitsPerSecond returns the raw rate.
func (r DataRate) BitsPerSecond() int64 { return int64(r) }

// BytesPerSecond returns the rate in bytes per second.
func (r DataRate) BytesPerSecond() float64 { return float64(r) / 8 }

// Mbit returns the rate in Mbit/s.
func (r DataRate) Mbit() float64 { return float64(r) / float64(MegabitPerSec) }

func (r DataRate) String() string {
	switch {
	case r >= GigabitPerSec:
		return fmt.Sprintf("%.2fGbit/s", float64(r)/float64(GigabitPerSec))
	case r >= MegabitPerSec:
		return fmt.Sprintf("%.2fMbit/s", float64(r)/float64(MegabitPerSec))
	case r >= KilobitPerSec:
		return fmt.Sprintf("%.2fkbit/s", float64(r)/float64(KilobitPerSec))
	default:
		return fmt.Sprintf("%dbit/s", int64(r))
	}
}

// TransmissionTime returns how long it takes to serialize s onto a link
// of rate r. It panics on a non-positive rate: a zero-rate link is a
// configuration error, not a runtime condition.
func (r DataRate) TransmissionTime(s DataSize) time.Duration {
	if r <= 0 {
		panic(fmt.Sprintf("units: transmission time over non-positive rate %v", r))
	}
	bits := float64(s.Bits())
	seconds := bits / float64(r)
	// Round up to the nanosecond so that back-to-back transmissions
	// never overlap due to truncation.
	return time.Duration(math.Ceil(seconds * float64(time.Second)))
}

// BDP returns the bandwidth-delay product of rate r over round-trip time
// rtt, i.e. the amount of data needed in flight to keep a path of this
// rate and RTT fully utilized. This is the quantity CircuitStart's
// optimal-window model is built on.
func BDP(r DataRate, rtt time.Duration) DataSize {
	bits := float64(r) * rtt.Seconds()
	return DataSize(math.Ceil(bits / 8))
}

// RateFromTransfer returns the average rate achieved by moving s in d.
func RateFromTransfer(s DataSize, d time.Duration) DataRate {
	if d <= 0 {
		panic("units: rate over non-positive duration")
	}
	return DataRate(float64(s.Bits()) / d.Seconds())
}
