package units

import (
	"testing"
	"testing/quick"
	"time"
)

func TestDataSizeConversions(t *testing.T) {
	tests := []struct {
		size  DataSize
		bytes int64
		bits  int64
		kb    float64
	}{
		{512 * Byte, 512, 4096, 0.512},
		{Kilobyte, 1000, 8000, 1},
		{Kibibyte, 1024, 8192, 1.024},
		{2 * Megabyte, 2e6, 16e6, 2000},
	}
	for _, tt := range tests {
		if got := tt.size.Bytes(); got != tt.bytes {
			t.Errorf("%v.Bytes() = %d, want %d", tt.size, got, tt.bytes)
		}
		if got := tt.size.Bits(); got != tt.bits {
			t.Errorf("%v.Bits() = %d, want %d", tt.size, got, tt.bits)
		}
		if got := tt.size.Kilobytes(); got != tt.kb {
			t.Errorf("%v.Kilobytes() = %v, want %v", tt.size, got, tt.kb)
		}
	}
}

func TestDataSizeString(t *testing.T) {
	tests := []struct {
		size DataSize
		want string
	}{
		{100 * Byte, "100B"},
		{1500 * Byte, "1.50kB"},
		{2 * Megabyte, "2.00MB"},
		{3 * Gigabyte, "3.00GB"},
	}
	for _, tt := range tests {
		if got := tt.size.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestDataRateConstructorsAndString(t *testing.T) {
	if got := Mbps(10).BitsPerSecond(); got != 10_000_000 {
		t.Errorf("Mbps(10) = %d bits/s", got)
	}
	if got := Kbps(64).BitsPerSecond(); got != 64_000 {
		t.Errorf("Kbps(64) = %d bits/s", got)
	}
	if got := Mbps(10).BytesPerSecond(); got != 1.25e6 {
		t.Errorf("BytesPerSecond = %v", got)
	}
	if got := Mbps(10).Mbit(); got != 10 {
		t.Errorf("Mbit = %v", got)
	}
	tests := []struct {
		rate DataRate
		want string
	}{
		{500 * BitPerSecond, "500bit/s"},
		{Kbps(64), "64.00kbit/s"},
		{Mbps(10), "10.00Mbit/s"},
		{2 * GigabitPerSec, "2.00Gbit/s"},
	}
	for _, tt := range tests {
		if got := tt.rate.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestTransmissionTime(t *testing.T) {
	// 512-byte cell over 8 Mbit/s: 4096 bits / 8e6 bit/s = 512 us.
	got := Mbps(8).TransmissionTime(512 * Byte)
	if got != 512*time.Microsecond {
		t.Errorf("cell over 8Mbit/s = %v, want 512µs", got)
	}
	// 1 byte over 1 Gbit/s = 8 ns.
	if got := GigabitPerSec.TransmissionTime(Byte); got != 8*time.Nanosecond {
		t.Errorf("1B over 1Gbit/s = %v, want 8ns", got)
	}
	// Zero size transmits instantly.
	if got := Mbps(1).TransmissionTime(0); got != 0 {
		t.Errorf("0B = %v, want 0", got)
	}
}

func TestTransmissionTimeRoundsUp(t *testing.T) {
	// 1 byte at 3 bit/s = 8/3 s = 2.666...s; must round up, not truncate.
	got := DataRate(3).TransmissionTime(Byte)
	if got <= 2666666666*time.Nanosecond {
		t.Errorf("transmission time %v was truncated", got)
	}
}

func TestTransmissionTimePanicsOnZeroRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on zero rate")
		}
	}()
	DataRate(0).TransmissionTime(Byte)
}

func TestBDP(t *testing.T) {
	// 8 Mbit/s × 100 ms = 800 kbit = 100 kB.
	if got := BDP(Mbps(8), 100*time.Millisecond); got != 100*Kilobyte {
		t.Errorf("BDP = %v, want 100kB", got)
	}
	if got := BDP(Mbps(8), 0); got != 0 {
		t.Errorf("BDP over zero RTT = %v, want 0", got)
	}
}

func TestRateFromTransfer(t *testing.T) {
	// 1 MB in 1 s = 8 Mbit/s.
	if got := RateFromTransfer(Megabyte, time.Second); got != Mbps(8) {
		t.Errorf("RateFromTransfer = %v, want 8Mbit/s", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("no panic on zero duration")
		}
	}()
	RateFromTransfer(Megabyte, 0)
}

// Property: transmitting a size then converting the elapsed time back to
// a rate recovers at least the original rate's worth of data (round-up
// never loses data).
func TestPropertyTransmissionRoundTrip(t *testing.T) {
	f := func(sz uint16, mbps uint8) bool {
		if mbps == 0 {
			return true
		}
		size := DataSize(sz) + 1
		rate := Mbps(float64(mbps))
		d := rate.TransmissionTime(size)
		// Data that could be sent in d at this rate must be >= size.
		sent := DataSize(rate.BytesPerSecond() * d.Seconds())
		return sent >= size-1 // tolerate 1B of float slack
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: BDP is monotone in both rate and RTT.
func TestPropertyBDPMonotone(t *testing.T) {
	f := func(r1, r2 uint8, ms1, ms2 uint8) bool {
		lo, hi := DataRate(r1)*MegabitPerSec, DataRate(r2)*MegabitPerSec
		if lo > hi {
			lo, hi = hi, lo
		}
		d1, d2 := time.Duration(ms1)*time.Millisecond, time.Duration(ms2)*time.Millisecond
		if d1 > d2 {
			d1, d2 = d2, d1
		}
		return BDP(lo, d1) <= BDP(hi, d2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
