// Package relay implements the overlay relay node: circuit multiplexing,
// one onion-layer decryption per forwarded cell, and the wiring between
// the per-hop transport receiver (from the predecessor) and sender (to
// the successor) that produces the paper's feedback signal — "when
// forwarding a cell to its successor, each relay issues a feedback
// message to its predecessor, signaling cells are 'moving'".
package relay

import (
	"fmt"

	"circuitstart/internal/cell"
	"circuitstart/internal/netem"
	"circuitstart/internal/onion"
	"circuitstart/internal/resource"
	"circuitstart/internal/sched"
	"circuitstart/internal/sim"
	"circuitstart/internal/transport"
)

// Stats counts relay-level activity across all circuits. Admission
// refusals and scheduler (policer) drops are counted separately from
// the link-level tail drops in the port's LinkStats, so overload
// diagnostics aren't conflated with queue overflow.
type Stats struct {
	CellsForwarded    uint64 // cells passed to an onward sender
	Recognized        uint64 // cells that fully decrypted at this relay
	Corrupt           uint64 // recognized cells failing digest verification
	UnknownCircuit    uint64 // frames for circuits this relay doesn't carry
	UnknownSource     uint64 // frames from nodes that are neither pred nor succ
	FailedDrops       uint64 // frames blackholed while the relay was failed
	HungDrops         uint64 // frames blackholed while the relay was hung
	AdmissionRejected uint64 // hops refused by the resource manager
	SchedDrops        uint64 // frames dropped by the uplink scheduler/policer
}

// Config selects the relay's uplink scheduling discipline and resource
// limits. The zero value — FIFO, unlimited — leaves the relay
// byte-identical to an unconfigured one.
type Config struct {
	// Scheduler names the uplink data-frame discipline: "" or "fifo"
	// keep the link's built-in FIFO ring, "ewma" installs the Tor-style
	// quiet-circuit priority scheduler (sched.EWMA).
	Scheduler string
	// HalfLife is the EWMA decay half-life (0 = sched.DefaultHalfLife).
	// Ignored for FIFO.
	HalfLife sim.Time
	// Limits caps the relay's circuits, buffered cell memory and uplink
	// bandwidth (see resource.Limits; the zero value is unlimited).
	Limits resource.Limits
}

// Enabled reports whether the config changes anything over the default.
func (c Config) Enabled() bool {
	return (c.Scheduler != "" && c.Scheduler != "fifo") || c.Limits.Enabled()
}

// Validate rejects unknown scheduler names and malformed limits.
func (c Config) Validate() error {
	switch c.Scheduler {
	case "", "fifo", "ewma":
	default:
		return fmt.Errorf("relay: unknown scheduler %q (want fifo or ewma)", c.Scheduler)
	}
	if c.HalfLife < 0 {
		return fmt.Errorf("relay: negative scheduler half-life %v", c.HalfLife)
	}
	return c.Limits.Validate()
}

// hop is one circuit's state at this relay: an independent transport
// instance per direction. Forward runs pred → succ (one onion layer
// removed here); backward runs succ → pred (one layer added here; the
// exit relay additionally seals the plaintext first).
type hop struct {
	circ cell.CircID
	pred netem.NodeID
	succ netem.NodeID
	keys *onion.HopKeys
	exit bool

	recv *transport.Receiver // forward data from pred
	send *transport.Sender   // forward data to succ

	brecv *transport.Receiver // backward data from succ
	bsend *transport.Sender   // backward data to pred
}

// Relay is a store-and-forward overlay node. Attach it to a
// netem.Fabric (star or routed backbone — the relay is topology-blind),
// then add one forward hop per circuit passing through it.
type Relay struct {
	id     netem.NodeID
	clock  *sim.Clock
	port   *netem.Port
	hops   map[cell.CircID]*hop
	stats  Stats
	failed bool
	hung   bool

	// Resource management and scheduling, nil/absent by default (see
	// Configure). mgr enforces Config.Limits; sched is the installed
	// uplink scheduler, held concretely so RemoveHop can Forget circuits.
	mgr   *resource.Manager
	sched sched.Queue

	// segs recycles the boxed segment wrappers this relay attaches to
	// outgoing frames. core.Network shares one pool per network and
	// reclaims wrappers through the fabric FramePool's OnReclaim hook; a
	// nil pool degrades to plain allocation.
	segs *transport.SegmentPool

	// ackFlush is DeliverTrain's scratch list of receivers owing a
	// coalesced acknowledgment; it reaches its working set (distinct
	// circuit×direction runs per train) once and is reused.
	ackFlush []*transport.Receiver
}

// New creates a relay and attaches it to the fabric.
func New(id netem.NodeID, fab netem.Fabric, access netem.AccessConfig, rng *sim.RNG) *Relay {
	r := &Relay{
		id:    id,
		clock: fab.Clock(),
		hops:  make(map[cell.CircID]*hop),
	}
	r.port = fab.Attach(id, access, r, rng)
	return r
}

// UseSegmentPool wires the shared segment-wrapper pool (see
// core.Network). Must be set before traffic flows; nil is valid.
func (r *Relay) UseSegmentPool(sp *transport.SegmentPool) { r.segs = sp }

// Configure applies a scheduling/limits config to a fresh relay:
// non-FIFO disciplines (or a bandwidth cap) install a scheduler on the
// uplink, and enabled limits create the resource manager that AddHop
// consults. kill is invoked when a limit policy evicts a circuit; it
// must tear the circuit down across the whole network (core.Network
// wires its circuit teardown here). Configure must run before any
// circuit is added; calling it with a zero config is a no-op.
func (r *Relay) Configure(cfg Config, kill func(circ cell.CircID)) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	if len(r.hops) > 0 {
		return fmt.Errorf("relay %s: Configure after circuits were added", r.id)
	}
	var q sched.Queue
	if cfg.Scheduler == "ewma" {
		q = sched.NewEWMA(r.clock, cfg.HalfLife.Duration())
	}
	if cfg.Limits.Bandwidth > 0 {
		if q == nil {
			q = sched.NewFIFO()
		}
		q = sched.NewPolice(q, r.clock, cfg.Limits.Bandwidth, cfg.Limits.Burst)
	}
	if q != nil {
		r.sched = q
		r.port.Uplink().SetScheduler(q)
	}
	if cfg.Limits.Enabled() {
		r.mgr = resource.NewManager(r.clock, cfg.Limits)
		r.mgr.OnKill(kill)
	}
	return nil
}

// Resources returns the relay's resource manager, or nil when the
// relay runs unlimited.
func (r *Relay) Resources() *resource.Manager { return r.mgr }

// ID returns the relay's node ID.
func (r *Relay) ID() netem.NodeID { return r.id }

// Port returns the relay's network attachment (for link stats in tests
// and experiments).
func (r *Relay) Port() *netem.Port { return r.port }

// Stats returns a snapshot of the relay counters, folding in the
// resource manager's admission refusals and the uplink scheduler's
// drops so callers see them beside the forwarding counters.
func (r *Relay) Stats() Stats {
	st := r.stats
	if r.mgr != nil {
		st.AdmissionRejected = r.mgr.Stats().Rejected
	}
	st.SchedDrops = r.port.Uplink().Stats().SchedDrops
	return st
}

// Fail takes the relay out of service: every frame delivered to it —
// data, ACKs, feedback, for any circuit — is blackholed (counted in
// Stats.FailedDrops) until Recover. Circuits crossing a failed relay
// stall on retransmission timers; a churn engine is expected to tear
// them down (and possibly rebuild them over a different path).
func (r *Relay) Fail() { r.failed = true }

// Recover puts a failed relay back in service. Per-circuit hop state
// torn down while it was failed is gone; new circuits may be built
// through it again.
func (r *Relay) Recover() { r.failed = false }

// Failed reports whether the relay is currently out of service.
func (r *Relay) Failed() bool { return r.failed }

// Hang puts the relay into the hung degradation mode: it blackholes
// every delivered frame (counted in Stats.HungDrops) exactly like a
// failed relay, but Failed() stays false — a hang is silent, nothing in
// the scripted churn machinery notices it. Endpoints only escape a hung
// relay through their own stall detection (see internal/faults).
func (r *Relay) Hang() { r.hung = true }

// Unhang clears the hung mode; frames flow again over whatever circuit
// state survived (transport retransmission recovers short hangs).
func (r *Relay) Unhang() { r.hung = false }

// Hung reports whether the relay is currently hung.
func (r *Relay) Hung() bool { return r.hung }

// Circuits returns the number of circuits currently crossing the relay.
func (r *Relay) Circuits() int { return len(r.hops) }

// HopSender returns the onward transport sender for a circuit, or nil.
// Experiments use it to observe per-relay window traces (the emergent
// back-propagation of the bottleneck window).
func (r *Relay) HopSender(circ cell.CircID) *transport.Sender {
	h := r.hops[circ]
	if h == nil {
		return nil
	}
	return h.send
}

// BackwardHopSender returns the backward-direction sender (toward the
// predecessor) for a circuit, or nil.
func (r *Relay) BackwardHopSender(circ cell.CircID) *transport.Sender {
	h := r.hops[circ]
	if h == nil {
		return nil
	}
	return h.bsend
}

// HopReceiver returns the inbound transport receiver for a circuit, or
// nil. Tests use it to assert reception-side invariants.
func (r *Relay) HopReceiver(circ cell.CircID) *transport.Receiver {
	h := r.hops[circ]
	if h == nil {
		return nil
	}
	return h.recv
}

// AddForwardHop registers a forward-only circuit hop (see AddHop).
func (r *Relay) AddForwardHop(circ cell.CircID, pred, succ netem.NodeID, keys *onion.HopKeys, params transport.Config) bool {
	return r.AddHop(circ, pred, succ, keys, params, false)
}

// AddHop registers a circuit through this relay, in both directions.
// Forward: cells arrive from pred, have one onion layer removed with
// keys, and are forwarded to succ. Backward: cells arrive from succ,
// gain one layer (the exit relay seals the plaintext first), and are
// forwarded to pred. params is a template whose Clock, Circ, Send and
// OnFirstTransmit fields are filled in here, once per direction.
//
// AddHop reports whether the circuit was admitted: a relay configured
// with resource limits may refuse it (or evict another circuit to make
// room, under a kill policy). Unlimited relays always admit.
func (r *Relay) AddHop(circ cell.CircID, pred, succ netem.NodeID, keys *onion.HopKeys, params transport.Config, exit bool) bool {
	if _, dup := r.hops[circ]; dup {
		panic(fmt.Sprintf("relay %s: circuit %d added twice", r.id, circ))
	}
	if keys == nil {
		panic(fmt.Sprintf("relay %s: circuit %d without hop keys", r.id, circ))
	}
	if r.mgr != nil && !r.mgr.Admit(circ) {
		return false
	}
	h := &hop{circ: circ, pred: pred, succ: succ, keys: keys, exit: exit}

	// On a train-running port, per-cell upstream signalling coalesces to
	// burst boundaries (one FEEDBACK per pump drain, one ACK per train).
	batch := r.port.Config().TrainSize > 1

	fwd := params
	fwd.Clock = r.clock
	fwd.Circ = circ
	fwd.Send = func(seg transport.Segment) bool {
		seg.Dir = transport.DirForward
		return sendSegment(r.segs, r.port, succ, seg)
	}
	// The feedback chain: the first onward transmission of a cell is
	// the moment this relay "forwards" it, which the receiver reports
	// upstream as FEEDBACK.
	fwd.BatchSignals = batch
	fwd.OnFirstTransmit = func(count uint64) {
		h.recv.NotifyForwarded(count)
	}
	if r.mgr != nil {
		// Memory accounting: both directions' senders report their held
		// cells (queued + retained) to the manager.
		fwd.OnHeld = func(delta int) { r.mgr.Held(circ, delta) }
	}
	h.send = transport.NewSender(fwd)

	h.recv = transport.NewReceiver(circ,
		func(seg transport.Segment) bool {
			seg.Dir = transport.DirForward
			return sendSegment(r.segs, r.port, pred, seg)
		},
		func(c *cell.Cell) { r.processCell(h, c) },
	)

	back := params
	back.Clock = r.clock
	back.Circ = circ
	back.Send = func(seg transport.Segment) bool {
		seg.Dir = transport.DirBackward
		return sendSegment(r.segs, r.port, pred, seg)
	}
	back.BatchSignals = batch
	back.OnFirstTransmit = func(count uint64) {
		h.brecv.NotifyForwarded(count)
	}
	if r.mgr != nil {
		back.OnHeld = func(delta int) { r.mgr.Held(circ, delta) }
	}
	h.bsend = transport.NewSender(back)

	h.brecv = transport.NewReceiver(circ,
		func(seg transport.Segment) bool {
			seg.Dir = transport.DirBackward
			return sendSegment(r.segs, r.port, succ, seg)
		},
		func(c *cell.Cell) { r.processBackwardCell(h, c) },
	)

	r.hops[circ] = h
	return true
}

// RemoveHop tears a circuit's state out of the relay, in both
// directions: all four transport instances are closed (their timers'
// events return to the clock's free list), queued cells are dropped for
// the collector (cells at a relay are aliased by neighbouring hops'
// retransmission state, so they must not be recycled here — see
// DESIGN.md, "Teardown ownership"), and later frames for the circuit
// are absorbed by the UnknownCircuit counter. It reports whether the
// circuit was present.
func (r *Relay) RemoveHop(circ cell.CircID) bool {
	h := r.hops[circ]
	if h == nil {
		return false
	}
	h.send.Close(nil)
	h.bsend.Close(nil)
	h.recv.Close()
	h.brecv.Close()
	delete(r.hops, circ)
	if r.mgr != nil {
		// The senders' Close just reported their held cells back through
		// OnHeld; now drop the circuit's admission slot.
		r.mgr.Release(circ)
	}
	if r.sched != nil {
		r.sched.Forget(uint32(circ))
	}
	return true
}

// sendSegment transmits a hop segment, giving control segments (ACK,
// FEEDBACK, PROBE) link priority so congestion feedback is not delayed
// by the data queues it describes. Data frames carry their circuit ID
// so installed circuit schedulers can tell flows apart.
//
// The segment rides the frame as a pooled *Segment wrapper: boxing the
// value directly would allocate on every hop transmission, the single
// hottest allocation site of a transfer. The wrapper returns to sp via
// the fabric FramePool's OnReclaim hook when the frame dies; a nil
// pool allocates a fresh wrapper per call.
func sendSegment(sp *transport.SegmentPool, p *netem.Port, dst netem.NodeID, seg transport.Segment) bool {
	s := sp.Get()
	*s = seg
	if seg.Kind == transport.KindData {
		return p.SendCirc(dst, seg.WireSize(), s, uint32(seg.Circ))
	}
	return p.SendPriority(dst, seg.WireSize(), s)
}

// processCell removes this relay's onion layer and forwards the cell.
// If the cell becomes recognized here (this relay is the circuit's last
// onion hop), its digest is verified and the plaintext travels on to the
// destination over the final transport hop.
func (r *Relay) processCell(h *hop, c *cell.Cell) {
	h.keys.DecryptForward(c)
	if hdr, _, err := c.Relay(); err == nil && hdr.Recognized == 0 {
		if h.keys.VerifyForward(c) {
			r.stats.Recognized++
		} else if looksRecognized(hdr) {
			// Recognized-looking header with a bad digest: corruption.
			r.stats.Corrupt++
			return
		}
	}
	r.stats.CellsForwarded++
	h.send.Enqueue(c)
}

// processBackwardCell handles one in-order backward cell from the
// successor: the exit relay (whose successor is the destination
// endpoint, outside the onion) seals the plaintext with its backward
// digest first; every relay then adds its backward encryption layer and
// forwards toward the predecessor. The client removes all layers.
func (r *Relay) processBackwardCell(h *hop, c *cell.Cell) {
	if h.exit {
		h.keys.SealBackward(c)
	}
	h.keys.EncryptBackward(c)
	r.stats.CellsForwarded++
	h.bsend.Enqueue(c)
}

// looksRecognized distinguishes a genuinely plaintext-looking header
// from random ciphertext that happens to have Recognized == 0: a real
// relay header has a known command. Random 507-byte ciphertext passes
// this ~1-in-10^4 of the time, and the digest check then rejects it.
func looksRecognized(hdr cell.RelayHeader) bool {
	return hdr.Cmd >= cell.RelayData && hdr.Cmd <= cell.RelaySendme
}

// Deliver demultiplexes a frame from the network to the right hop and
// direction (netem.Handler).
func (r *Relay) Deliver(f *netem.Frame) {
	if r.failed {
		r.stats.FailedDrops++
		return
	}
	if r.hung {
		r.stats.HungDrops++
		return
	}
	seg, ok := f.Payload.(*transport.Segment)
	if !ok {
		panic(fmt.Sprintf("relay %s: non-segment frame from %s", r.id, f.Src))
	}
	h := r.hops[seg.Circ]
	if h == nil {
		r.stats.UnknownCircuit++
		return
	}
	r.dispatch(h, f.Src, seg)
}

// DeliverTrain demultiplexes a whole cell train in one call
// (netem.TrainHandler). A train is typically a same-circuit run — the
// EWMA scheduler guarantees it, FIFO bursts usually are — so the
// circuit-table lookup is hoisted across the run: the per-cell onion
// work stays, but the per-cell demux bookkeeping is paid once per run
// instead of once per cell.
func (r *Relay) DeliverTrain(fs []*netem.Frame) {
	if r.failed {
		r.stats.FailedDrops += uint64(len(fs))
		return
	}
	if r.hung {
		r.stats.HungDrops += uint64(len(fs))
		return
	}
	var h *hop
	var hCirc cell.CircID
	for _, f := range fs {
		seg, ok := f.Payload.(*transport.Segment)
		if !ok {
			panic(fmt.Sprintf("relay %s: non-segment frame from %s", r.id, f.Src))
		}
		if h == nil || seg.Circ != hCirc {
			h, hCirc = r.hops[seg.Circ], seg.Circ
		}
		if h == nil {
			r.stats.UnknownCircuit++
			continue
		}
		if rcv := r.dispatchBatched(h, f.Src, seg); rcv != nil {
			r.ackFlush = append(r.ackFlush, rcv)
		}
	}
	// One cumulative FEEDBACK+ACK pair per receiver that saw data in
	// this train, instead of one per cell.
	for i, rcv := range r.ackFlush {
		rcv.Flush()
		r.ackFlush[i] = nil
	}
	r.ackFlush = r.ackFlush[:0]
}

// dispatch routes one segment to the hop's transport instance for its
// (source, direction, kind).
func (r *Relay) dispatch(h *hop, src netem.NodeID, seg *transport.Segment) {
	switch src {
	case h.pred:
		if seg.Dir == transport.DirBackward {
			// Control for our backward sender.
			switch seg.Kind {
			case transport.KindAck:
				h.bsend.HandleAck(seg.Count)
			case transport.KindFeedback:
				h.bsend.HandleFeedback(seg.Count)
			default:
				r.stats.UnknownSource++
			}
			return
		}
		// Inbound forward data path.
		switch seg.Kind {
		case transport.KindData:
			h.recv.HandleData(seg.Seq, seg.Cell)
		case transport.KindProbe:
			h.recv.HandleProbe()
		default:
			r.stats.UnknownSource++
		}
	case h.succ:
		if seg.Dir == transport.DirBackward {
			// Inbound backward data path.
			switch seg.Kind {
			case transport.KindData:
				h.brecv.HandleData(seg.Seq, seg.Cell)
			case transport.KindProbe:
				h.brecv.HandleProbe()
			default:
				r.stats.UnknownSource++
			}
			return
		}
		// Control for our forward sender.
		switch seg.Kind {
		case transport.KindAck:
			h.send.HandleAck(seg.Count)
		case transport.KindFeedback:
			h.send.HandleFeedback(seg.Count)
		default:
			r.stats.UnknownSource++
		}
	default:
		r.stats.UnknownSource++
	}
}

// dispatchBatched is dispatch for cell-train delivery: data segments
// defer their acknowledgment (Receiver.HandleDataBatched), and the
// receiver that newly owes an ack is returned so DeliverTrain can flush
// it once after the whole train is processed. Control segments are
// handled exactly as in dispatch.
func (r *Relay) dispatchBatched(h *hop, src netem.NodeID, seg *transport.Segment) *transport.Receiver {
	switch src {
	case h.pred:
		if seg.Dir == transport.DirBackward {
			switch seg.Kind {
			case transport.KindAck:
				h.bsend.HandleAck(seg.Count)
			case transport.KindFeedback:
				h.bsend.HandleFeedback(seg.Count)
			default:
				r.stats.UnknownSource++
			}
			return nil
		}
		switch seg.Kind {
		case transport.KindData:
			if h.recv.HandleDataBatched(seg.Seq, seg.Cell) {
				return h.recv
			}
		case transport.KindProbe:
			h.recv.HandleProbe()
		default:
			r.stats.UnknownSource++
		}
	case h.succ:
		if seg.Dir == transport.DirBackward {
			switch seg.Kind {
			case transport.KindData:
				if h.brecv.HandleDataBatched(seg.Seq, seg.Cell) {
					return h.brecv
				}
			case transport.KindProbe:
				h.brecv.HandleProbe()
			default:
				r.stats.UnknownSource++
			}
			return nil
		}
		switch seg.Kind {
		case transport.KindAck:
			h.send.HandleAck(seg.Count)
		case transport.KindFeedback:
			h.send.HandleFeedback(seg.Count)
		default:
			r.stats.UnknownSource++
		}
	default:
		r.stats.UnknownSource++
	}
	return nil
}
