package relay

import (
	"testing"
	"time"

	"circuitstart/internal/cell"
	"circuitstart/internal/netem"
	"circuitstart/internal/onion"
	"circuitstart/internal/sim"
	"circuitstart/internal/transport"
	"circuitstart/internal/units"
)

// testRig wires source node → relay → sink node over a star, driving
// the relay through raw transport segments so relay behaviour can be
// asserted in isolation.
type testRig struct {
	clock *sim.Clock
	star  *netem.Star
	relay *Relay

	srcGot   []transport.Segment // control arriving back at the source node
	sinkGot  []transport.Segment // segments arriving at the sink node
	sinkRecv *transport.Receiver // live receiver at the sink

	keys *onion.HopKeys // relay-side keys
	ck   *onion.HopKeys // client-side keys
}

func newTestRig(t *testing.T) *testRig {
	t.Helper()
	clock := sim.NewClock()
	star := netem.NewStar(clock)
	rig := &testRig{clock: clock, star: star}

	access := netem.Symmetric(units.Mbps(50), time.Millisecond, 0)
	rig.relay = New("relay", star, access, nil)

	star.Attach("src", access, netem.HandlerFunc(func(f *netem.Frame) {
		rig.srcGot = append(rig.srcGot, *f.Payload.(*transport.Segment))
	}), nil)
	// The sink records raw segments for assertions but also behaves as
	// a live hop receiver — otherwise the relay's onward window (2
	// cells initially) stalls after two cells.
	sinkPort := star.Attach("sink", access, netem.HandlerFunc(func(f *netem.Frame) {
		seg := *f.Payload.(*transport.Segment)
		rig.sinkGot = append(rig.sinkGot, seg)
		switch seg.Kind {
		case transport.KindData:
			rig.sinkRecv.HandleData(seg.Seq, seg.Cell)
		case transport.KindProbe:
			rig.sinkRecv.HandleProbe()
		}
	}), nil)
	rig.sinkRecv = transport.NewReceiver(7, func(seg transport.Segment) bool {
		return sinkPort.Send("relay", seg.WireSize(), &seg)
	}, func(*cell.Cell) {
		rig.sinkRecv.NotifyForwarded(rig.sinkRecv.Expected())
	})

	ident, err := onion.NewIdentity(fixedRand{})
	if err != nil {
		t.Fatal(err)
	}
	ck, create, err := onion.ClientHandshake(fixedRand{}, ident.Public())
	if err != nil {
		t.Fatal(err)
	}
	rk, err := ident.RelayHandshake(create)
	if err != nil {
		t.Fatal(err)
	}
	rig.ck, rig.keys = ck, rk
	return rig
}

// fixedRand is a deterministic io.Reader for key generation in tests.
type fixedRand struct{}

func (fixedRand) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = byte(i*37 + 11)
	}
	return len(p), nil
}

// dataCell builds a cell encrypted for the rig's single hop.
func (r *testRig) dataCell(payloadByte byte) *cell.Cell {
	c := &cell.Cell{Circ: 7}
	if err := c.SetRelay(cell.RelayHeader{Cmd: cell.RelayData, StreamID: 1}, []byte{payloadByte}); err != nil {
		panic(err)
	}
	r.ck.SealForward(c)
	r.ck.EncryptForward(c)
	return c
}

func (r *testRig) addHop(t *testing.T) {
	t.Helper()
	r.relay.AddForwardHop(7, "src", "sink", r.keys, transport.Config{})
}

func (r *testRig) sendData(seq uint64, c *cell.Cell) {
	port := r.star.Port("src")
	seg := transport.Segment{Kind: transport.KindData, Circ: 7, Seq: seq, Cell: c}
	port.Send("relay", seg.WireSize(), &seg)
}

func (r *testRig) run() { r.clock.RunUntil(r.clock.Now() + 10*sim.Second) }

func TestRelayForwardsAndDecrypts(t *testing.T) {
	rig := newTestRig(t)
	rig.addHop(t)

	for i := 0; i < 3; i++ {
		rig.sendData(uint64(i), rig.dataCell(byte('a'+i)))
	}
	rig.run()

	// The sink node here never acknowledges, so the relay's reliability
	// layer retransmits — count unique sequences.
	datas := map[uint64]*cell.Cell{}
	for _, s := range rig.sinkGot {
		if s.Kind == transport.KindData {
			datas[s.Seq] = s.Cell
		}
	}
	if len(datas) != 3 {
		t.Fatalf("sink got %d distinct data segments, want 3", len(datas))
	}
	// The relay was the only onion layer, so the sink sees plaintext
	// relay cells with verified digests.
	for seq, c := range datas {
		hdr, data, err := c.Relay()
		if err != nil || hdr.Cmd != cell.RelayData {
			t.Fatalf("seq %d not a plaintext relay cell: %v", seq, err)
		}
		if len(data) != 1 || data[0] != byte('a'+int(seq)) {
			t.Fatalf("seq %d payload %q", seq, data)
		}
	}
	st := rig.relay.Stats()
	if st.CellsForwarded != 3 || st.Recognized != 3 {
		t.Fatalf("stats %+v", st)
	}
}

func TestRelayEmitsAckAndFeedback(t *testing.T) {
	rig := newTestRig(t)
	rig.addHop(t)
	rig.sendData(0, rig.dataCell('x'))
	rig.run()

	var acks, feedbacks int
	for _, s := range rig.srcGot {
		switch s.Kind {
		case transport.KindAck:
			acks++
			if s.Count != 1 {
				t.Errorf("ACK count %d", s.Count)
			}
		case transport.KindFeedback:
			feedbacks++
			if s.Count != 1 {
				t.Errorf("FEEDBACK count %d", s.Count)
			}
		}
	}
	if acks == 0 {
		t.Error("no ACK reached the predecessor")
	}
	if feedbacks == 0 {
		t.Error("no FEEDBACK reached the predecessor — the 'cells are moving' signal is missing")
	}
}

func TestRelayFeedbackFollowsForwarding(t *testing.T) {
	// Feedback must be emitted when the relay *transmits onward*, not
	// when it receives: with a sender that cannot transmit (successor
	// window full is hard to fake, so use out-of-order data that parks
	// in the receive buffer), no feedback may be sent.
	rig := newTestRig(t)
	rig.addHop(t)
	// Send seq 1 first: it buffers (expected = 0), is never delivered,
	// and must therefore produce an ACK of 0 and no feedback.
	rig.sendData(1, rig.dataCell('b'))
	rig.run()

	for _, s := range rig.srcGot {
		if s.Kind == transport.KindFeedback {
			t.Fatalf("feedback %d for undelivered cell", s.Count)
		}
		if s.Kind == transport.KindAck && s.Count != 0 {
			t.Fatalf("ACK %d for out-of-order cell", s.Count)
		}
	}
	for _, s := range rig.sinkGot {
		if s.Kind == transport.KindData {
			t.Fatal("out-of-order cell was forwarded")
		}
	}
}

func TestRelayDropsUnknownCircuit(t *testing.T) {
	rig := newTestRig(t)
	rig.addHop(t)
	port := rig.star.Port("src")
	seg := transport.Segment{Kind: transport.KindData, Circ: 99, Seq: 0, Cell: rig.dataCell('z')}
	port.Send("relay", seg.WireSize(), &seg)
	rig.run()
	if got := rig.relay.Stats().UnknownCircuit; got != 1 {
		t.Fatalf("UnknownCircuit = %d", got)
	}
	if len(rig.sinkGot) != 0 {
		t.Fatal("segment for unknown circuit was forwarded")
	}
}

func TestRelayIgnoresStrangerFrames(t *testing.T) {
	rig := newTestRig(t)
	rig.addHop(t)
	// A third node sends a segment on circuit 7: neither pred nor succ.
	rig.star.Attach("stranger", netem.Symmetric(units.Mbps(10), time.Millisecond, 0),
		netem.HandlerFunc(func(*netem.Frame) {}), nil)
	seg := transport.Segment{Kind: transport.KindAck, Circ: 7, Count: 5}
	rig.star.Port("stranger").Send("relay", seg.WireSize(), &seg)
	rig.run()
	if got := rig.relay.Stats().UnknownSource; got != 1 {
		t.Fatalf("UnknownSource = %d", got)
	}
}

func TestRelayCorruptCellDropped(t *testing.T) {
	rig := newTestRig(t)
	rig.addHop(t)
	// A cell that decrypts to a recognized-looking header but a wrong
	// digest must be dropped, not forwarded. Craft it by sealing the
	// plaintext (computing the digest), corrupting a data byte, and
	// only then applying the stream encryption — this must be the first
	// cell on the hop so the CTR keystreams stay aligned.
	c := &cell.Cell{Circ: 7}
	if err := c.SetRelay(cell.RelayHeader{Cmd: cell.RelayData, StreamID: 1}, []byte{'x'}); err != nil {
		t.Fatal(err)
	}
	rig.ck.SealForward(c)
	c.Payload[cell.Size-100] ^= 0xff // corrupt data after the digest was sealed
	rig.ck.EncryptForward(c)

	rig.sendData(0, c)
	rig.run()
	st := rig.relay.Stats()
	if st.Corrupt != 1 {
		t.Fatalf("Corrupt = %d, want 1", st.Corrupt)
	}
	for _, s := range rig.sinkGot {
		if s.Kind == transport.KindData {
			t.Fatal("corrupt cell was forwarded")
		}
	}
}

func TestRelayDuplicateHopPanics(t *testing.T) {
	rig := newTestRig(t)
	rig.addHop(t)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate AddForwardHop did not panic")
		}
	}()
	rig.relay.AddForwardHop(7, "src", "sink", rig.keys, transport.Config{})
}

func TestRelayHopAccessors(t *testing.T) {
	rig := newTestRig(t)
	rig.addHop(t)
	if rig.relay.HopSender(7) == nil || rig.relay.HopReceiver(7) == nil {
		t.Fatal("hop accessors returned nil for existing circuit")
	}
	if rig.relay.HopSender(8) != nil || rig.relay.HopReceiver(8) != nil {
		t.Fatal("hop accessors returned non-nil for missing circuit")
	}
	if rig.relay.ID() != "relay" {
		t.Fatalf("ID = %q", rig.relay.ID())
	}
	if rig.relay.Port() == nil {
		t.Fatal("nil port")
	}
}

func TestRelayProbeAnswered(t *testing.T) {
	rig := newTestRig(t)
	rig.addHop(t)
	rig.sendData(0, rig.dataCell('x'))
	rig.run()
	before := len(rig.srcGot)
	seg := transport.Segment{Kind: transport.KindProbe, Circ: 7}
	rig.star.Port("src").Send("relay", seg.WireSize(), &seg)
	rig.run()
	var ack, fb bool
	for _, s := range rig.srcGot[before:] {
		if s.Kind == transport.KindAck {
			ack = true
		}
		if s.Kind == transport.KindFeedback {
			fb = true
		}
	}
	if !ack || !fb {
		t.Fatalf("probe answered ack=%v fb=%v", ack, fb)
	}
}

// backCell builds a plaintext backward cell (as the destination server
// would send it to the exit relay).
func backCell(payload byte) *cell.Cell {
	c := &cell.Cell{Circ: 7}
	if err := c.SetRelay(cell.RelayHeader{Cmd: cell.RelayData, StreamID: 1}, []byte{payload}); err != nil {
		panic(err)
	}
	return c
}

func (r *testRig) sendBackwardData(seq uint64, c *cell.Cell) {
	port := r.star.Port("sink")
	seg := transport.Segment{Kind: transport.KindData, Dir: transport.DirBackward, Circ: 7, Seq: seq, Cell: c}
	port.Send("relay", seg.WireSize(), &seg)
}

func TestRelayBackwardExitSealsAndEncrypts(t *testing.T) {
	rig := newTestRig(t)
	// Register the hop as the exit: backward plaintext from the sink
	// must be sealed and encrypted before leaving toward the source.
	rig.relay.AddHop(7, "src", "sink", rig.keys, transport.Config{}, true)

	rig.sendBackwardData(0, backCell('q'))
	rig.clock.RunUntil(5 * sim.Second)

	var got *cell.Cell
	for _, s := range rig.srcGot {
		if s.Kind == transport.KindData && s.Dir == transport.DirBackward {
			got = s.Cell
			break
		}
	}
	if got == nil {
		t.Fatal("no backward cell reached the predecessor")
	}
	// The cell on the wire must be ciphertext; one backward decryption
	// with the client-side keys must reveal a sealed, verifiable cell.
	rig.ck.DecryptBackward(got)
	hdr, data, err := got.Relay()
	if err != nil || hdr.Recognized != 0 {
		t.Fatalf("backward cell not recognized after one layer: %v", err)
	}
	if !rig.ck.VerifyBackward(got) {
		t.Fatal("backward digest invalid — exit did not seal")
	}
	if len(data) != 1 || data[0] != 'q' {
		t.Fatalf("payload %q", data)
	}
	if rig.relay.BackwardHopSender(7) == nil {
		t.Fatal("nil BackwardHopSender")
	}
}

func TestRelayBackwardMiddleOnlyEncrypts(t *testing.T) {
	rig := newTestRig(t)
	// Non-exit hop: backward cells gain a layer but are NOT sealed here
	// (the digest belongs to the exit). Feed it an already-sealed cell
	// as if it came from the exit's side.
	rig.relay.AddHop(7, "src", "sink", rig.keys, transport.Config{}, false)

	c := backCell('m')
	rig.sendBackwardData(0, c)
	rig.clock.RunUntil(5 * sim.Second)

	var got *cell.Cell
	for _, s := range rig.srcGot {
		if s.Kind == transport.KindData && s.Dir == transport.DirBackward {
			got = s.Cell
			break
		}
	}
	if got == nil {
		t.Fatal("no backward cell reached the predecessor")
	}
	rig.ck.DecryptBackward(got)
	hdr, data, err := got.Relay()
	if err != nil || hdr.Recognized != 0 {
		t.Fatalf("backward cell not readable after one layer: %v", err)
	}
	// A middle relay does not seal: the digest field is whatever the
	// plaintext carried (zero here), so VerifyBackward fails.
	if rig.ck.VerifyBackward(got) {
		t.Fatal("middle relay sealed the cell — only the exit may")
	}
	if len(data) != 1 || data[0] != 'm' {
		t.Fatalf("payload %q", data)
	}
}

func TestRelayBackwardControlDemux(t *testing.T) {
	rig := newTestRig(t)
	rig.relay.AddHop(7, "src", "sink", rig.keys, transport.Config{}, true)
	rig.sendBackwardData(0, backCell('x'))
	rig.clock.RunUntil(5 * sim.Second)

	// Backward ACK from the predecessor must reach the backward sender.
	bs := rig.relay.BackwardHopSender(7)
	sentBefore := bs.Stats().Transmitted
	if sentBefore == 0 {
		t.Fatal("backward sender transmitted nothing")
	}
	seg := transport.Segment{Kind: transport.KindAck, Dir: transport.DirBackward, Circ: 7, Count: sentBefore}
	rig.star.Port("src").Send("relay", seg.WireSize(), &seg)
	rig.clock.RunUntil(rig.clock.Now() + sim.Second)
	if bs.Stats().Acked != sentBefore {
		t.Fatalf("backward sender acked=%d, want %d", bs.Stats().Acked, sentBefore)
	}
}
