// Package serve is the sweep service daemon: a long-running HTTP/JSON
// front door over the batch sweep engine. Clients submit the same
// versioned spec files `circuitsim sweep -spec` takes (internal/spec is
// the single codec), the daemon executes them on sweep.Engine worker
// pools, streams per-grid-point rows live in grid order (chunked CSV or
// NDJSON, reusing the batch sinks so streamed bytes are identical to
// batch files), and caches completed grid points under their canonical
// content hash — resubmitting an overlapping grid replays the shared
// points byte-identically and computes only the delta.
//
// Endpoints:
//
//	POST   /v1/sweeps              submit a spec; 202 + job id
//	GET    /v1/sweeps              list jobs
//	GET    /v1/sweeps/{id}         status + progress counters
//	GET    /v1/sweeps/{id}/rows    stream rows (Accept: text/csv |
//	                               application/x-ndjson); follows a
//	                               running sweep to completion
//	GET    /v1/sweeps/{id}/summary table summary (Accept: text/plain
//	                               for the exact CLI block, else JSON)
//	DELETE /v1/sweeps/{id}         cancel a queued or running sweep
//	GET    /v1/healthz             liveness + queue/cache counters
package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"

	"circuitstart/internal/spec"
	"circuitstart/internal/sweep"
	"circuitstart/internal/traceio"
)

// Options configures a Server. The zero value serves with one job at a
// time, a 16-deep queue and a 4096-point cache.
type Options struct {
	// Jobs is the number of sweeps executing concurrently (≤ 0 = 1).
	Jobs int
	// QueueDepth bounds submitted-but-not-started jobs (≤ 0 = 16);
	// submissions beyond it are refused with 503.
	QueueDepth int
	// SweepWorkers is each job's Engine.Workers (≤ 0 = one per CPU).
	SweepWorkers int
	// PointWorkers is each job's Engine.PointWorkers (≤ 0 = 1).
	PointWorkers int
	// CachePoints bounds the completed-point cache (0 = 4096,
	// negative = caching disabled).
	CachePoints int
	// MaxJobs bounds retained jobs; the oldest terminal jobs are
	// evicted past it (≤ 0 = 64).
	MaxJobs int
	// MaxSpecBytes bounds a submitted spec body (≤ 0 = 1 MiB).
	MaxSpecBytes int64
}

func (o Options) withDefaults() Options {
	if o.Jobs <= 0 {
		o.Jobs = 1
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 16
	}
	if o.CachePoints == 0 {
		o.CachePoints = 4096
	}
	if o.MaxJobs <= 0 {
		o.MaxJobs = 64
	}
	if o.MaxSpecBytes <= 0 {
		o.MaxSpecBytes = 1 << 20
	}
	return o
}

// Server is the daemon state: the job registry, the bounded submission
// queue and the content-addressed point cache.
type Server struct {
	opts  Options
	cache *pointCache

	mu    sync.Mutex
	jobs  map[string]*job
	order []string
	seq   int

	queue chan *job
	quit  chan struct{}
	wg    sync.WaitGroup
}

// NewServer starts the job-executor pool and returns the server. Call
// Close to stop accepting work and wait for running jobs to wind down
// (running sweeps are cancelled).
func NewServer(opts Options) *Server {
	opts = opts.withDefaults()
	s := &Server{
		opts:  opts,
		jobs:  make(map[string]*job),
		queue: make(chan *job, opts.QueueDepth),
		quit:  make(chan struct{}),
	}
	if opts.CachePoints > 0 {
		s.cache = newPointCache(opts.CachePoints)
	}
	for i := 0; i < opts.Jobs; i++ {
		s.wg.Add(1)
		go s.runLoop()
	}
	return s
}

func (s *Server) runLoop() {
	defer s.wg.Done()
	for {
		select {
		case <-s.quit:
			return
		case j := <-s.queue:
			j.run(s.opts.SweepWorkers, s.opts.PointWorkers, s.cache)
		}
	}
}

// Close stops the executor pool. Queued jobs stay queued (and report
// so); the running jobs are cancelled and awaited.
func (s *Server) Close() {
	close(s.quit)
	s.mu.Lock()
	for _, j := range s.jobs {
		j.cancel.Store(true)
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// ListenAndServe runs a server on addr until the listener fails.
func ListenAndServe(addr string, opts Options) error {
	s := NewServer(opts)
	defer s.Close()
	return http.ListenAndServe(addr, s.Handler())
}

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/healthz", s.handleHealthz)
	mux.HandleFunc("/v1/sweeps", s.handleSweeps)
	mux.HandleFunc("/v1/sweeps/", s.handleSweep)
	return mux
}

// httpError writes a JSON error body — spec validation errors arrive
// here verbatim, naming the offending entry.
func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	s.mu.Lock()
	var queued, running int
	for _, j := range s.jobs {
		j.mu.Lock()
		switch j.state {
		case StateQueued:
			queued++
		case StateRunning:
			running++
		}
		j.mu.Unlock()
	}
	jobs := len(s.jobs)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":      true,
		"jobs":    jobs,
		"queued":  queued,
		"running": running,
		"cache":   s.cache.stats(),
	})
}

// handleSweeps covers the collection: POST submits, GET lists.
func (s *Server) handleSweeps(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		s.submit(w, r)
	case http.MethodGet:
		s.list(w)
	default:
		httpError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
	}
}

func (s *Server) submit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, s.opts.MaxSpecBytes+1))
	if err != nil {
		httpError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	if int64(len(body)) > s.opts.MaxSpecBytes {
		httpError(w, http.StatusRequestEntityTooLarge, "spec exceeds %d bytes", s.opts.MaxSpecBytes)
		return
	}
	f, err := spec.Parse(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	sw, err := f.Sweep()
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	hash, err := f.BaseHash()
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	pts, err := sw.Points()
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}

	j := &job{
		file:     f,
		sw:       sw,
		baseHash: hash,
		state:    StateQueued,
		notify:   make(chan struct{}),
		meta: sweep.Meta{
			Name:       sw.Name,
			Dimensions: sw.DimensionNames(),
			GridSize:   sw.Size(),
			Points:     len(pts),
		},
	}

	s.mu.Lock()
	s.seq++
	j.id = fmt.Sprintf("sweep-%06d", s.seq)
	select {
	case s.queue <- j:
	default:
		s.mu.Unlock()
		httpError(w, http.StatusServiceUnavailable, "job queue full (%d queued)", s.opts.QueueDepth)
		return
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.evictLocked()
	s.mu.Unlock()

	writeJSON(w, http.StatusAccepted, j.snapshot())
}

// evictLocked drops the oldest terminal jobs past MaxJobs.
func (s *Server) evictLocked() {
	for len(s.jobs) > s.opts.MaxJobs {
		evicted := false
		for i, id := range s.order {
			j := s.jobs[id]
			j.mu.Lock()
			dead := terminal(j.state)
			j.mu.Unlock()
			if dead {
				delete(s.jobs, id)
				s.order = append(s.order[:i], s.order[i+1:]...)
				evicted = true
				break
			}
		}
		if !evicted {
			return // everything live; let the registry run long
		}
	}
}

func (s *Server) list(w http.ResponseWriter) {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	jobs := make([]*job, 0, len(ids))
	for _, id := range ids {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	out := make([]jobStatus, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.snapshot())
	}
	writeJSON(w, http.StatusOK, map[string]any{"sweeps": out})
}

// handleSweep covers one job: status, rows, summary, cancel.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/sweeps/")
	id, sub, _ := strings.Cut(rest, "/")
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	if j == nil {
		httpError(w, http.StatusNotFound, "no sweep %q", id)
		return
	}
	switch {
	case sub == "" && r.Method == http.MethodGet:
		writeJSON(w, http.StatusOK, j.snapshot())
	case sub == "" && r.Method == http.MethodDelete:
		s.cancel(w, j)
	case sub == "rows" && r.Method == http.MethodGet:
		s.rows(w, r, j)
	case sub == "summary" && r.Method == http.MethodGet:
		s.summary(w, r, j)
	case sub == "" || sub == "rows" || sub == "summary":
		httpError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
	default:
		httpError(w, http.StatusNotFound, "no resource %q", sub)
	}
}

func (s *Server) cancel(w http.ResponseWriter, j *job) {
	j.cancel.Store(true)
	// A queued job never reaches its runner's state machine promptly
	// (it may sit behind long sweeps), so cancel it here.
	j.mu.Lock()
	if j.state == StateQueued {
		j.state = StateCancelled
		j.broadcastLocked()
	}
	j.mu.Unlock()
	writeJSON(w, http.StatusAccepted, j.snapshot())
}

// rows streams the job's emitted rows in grid order and follows the
// job live until it reaches a terminal state, flushing after every
// write so clients see points as they complete. The bytes re-emitted
// for each row go through the stock batch sinks — a streamed CSV is
// byte-identical to `circuitsim sweep -out` for the same spec.
func (s *Server) rows(w http.ResponseWriter, r *http.Request, j *job) {
	ndjson := false
	accept := r.Header.Get("Accept")
	switch {
	case strings.Contains(accept, "application/x-ndjson"), strings.Contains(accept, "application/jsonl"):
		ndjson = true
	case accept == "", strings.Contains(accept, "text/csv"), strings.Contains(accept, "*/*"):
	default:
		httpError(w, http.StatusNotAcceptable, "accept %q (want text/csv or application/x-ndjson)", accept)
		return
	}

	var flusher traceio.Flusher
	if f, ok := w.(http.Flusher); ok {
		flusher = f
	}
	out := traceio.NewAutoFlushWriter(w, flusher)
	var sink sweep.Sink
	if ndjson {
		w.Header().Set("Content-Type", "application/x-ndjson")
		sink = sweep.NewJSONLSink(out)
	} else {
		w.Header().Set("Content-Type", "text/csv")
		sink = sweep.NewCSVSink(out)
	}
	w.WriteHeader(http.StatusOK)
	if err := sink.Begin(j.meta); err != nil {
		return
	}

	next := 0
	for {
		j.mu.Lock()
		batch := j.rows[next:]
		next = len(j.rows)
		done := terminal(j.state)
		wait := j.notify
		j.mu.Unlock()

		for i := range batch {
			pr := sweep.PointResult{
				Point: sweep.Point{Index: batch[i].index, Coords: batch[i].coords},
				Arms:  batch[i].arms,
			}
			if err := sink.Point(&pr); err != nil {
				return
			}
		}
		if done && len(batch) == 0 {
			sink.Flush()
			return
		}
		if len(batch) > 0 {
			continue // drain before blocking
		}
		select {
		case <-wait:
		case <-r.Context().Done():
			return
		}
	}
}

// summary renders the finished sweep's table. text/plain returns the
// exact block `circuitsim sweep` prints (Table.WriteSummary), so a
// remote CLI run is byte-identical to a local one; the default is a
// JSON view of best arms and marginals.
func (s *Server) summary(w http.ResponseWriter, r *http.Request, j *job) {
	j.mu.Lock()
	state := j.state
	tbl := j.tbl
	errMsg := j.errMsg
	j.mu.Unlock()
	if !terminal(state) {
		httpError(w, http.StatusConflict, "sweep is %s; the summary is available once it completes", state)
		return
	}
	if tbl == nil {
		httpError(w, http.StatusNotFound, "sweep %s produced no table (%s)", j.id, errMsg)
		return
	}
	if strings.Contains(r.Header.Get("Accept"), "text/plain") {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		tbl.WriteSummary(w)
		return
	}
	type marginal struct {
		Dimension string              `json:"dimension"`
		Rows      []sweep.MarginalRow `json:"rows"`
	}
	marginals := make([]marginal, 0, len(tbl.Meta.Dimensions))
	for _, dim := range tbl.Meta.Dimensions {
		rows, err := tbl.Marginal(dim)
		if err != nil {
			httpError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		marginals = append(marginals, marginal{Dimension: dim, Rows: rows})
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"id":        j.id,
		"state":     state,
		"name":      tbl.Meta.Name,
		"best":      tbl.BestArms(),
		"marginals": marginals,
		"error":     errMsg,
	})
}
