package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"circuitstart/internal/spec"
	"circuitstart/internal/sweep"
)

// smokeSpec is a tiny trace-base grid: two single-circuit trace points,
// cheap enough that every test can execute it for real.
const smokeSpec = `{
  "name": "smoke",
  "base": {"kind": "trace"},
  "dimensions": [{"gammas": [2, 4]}]
}`

func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s := NewServer(opts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// submit posts a spec and returns the job status.
func submit(t *testing.T, ts *httptest.Server, specJSON string) jobStatus {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader(specJSON))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %s: %s", resp.Status, body)
	}
	var st jobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("submit response: %v\n%s", err, body)
	}
	return st
}

// getStatus fetches a job's status.
func getStatus(t *testing.T, ts *httptest.Server, id string) jobStatus {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/sweeps/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st jobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// waitState polls until the predicate holds, with a deadline.
func waitState(t *testing.T, ts *httptest.Server, id string, pred func(jobStatus) bool) jobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		st := getStatus(t, ts, id)
		if pred(st) {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting on sweep %s (state %s, emitted %d)", id, st.State, st.Emitted)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// fetch GETs a path with an Accept header and returns status + body.
func fetch(t *testing.T, ts *httptest.Server, path, accept string) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, ts.URL+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// batchBytes runs the spec through the batch engine in-process and
// returns the CSV bytes, JSONL bytes, and summary text the CLI would
// produce — the reference for every byte-identity assertion.
func batchBytes(t *testing.T, specJSON string) (csv, jsonl, summary []byte) {
	t.Helper()
	f, err := spec.Parse([]byte(specJSON))
	if err != nil {
		t.Fatal(err)
	}
	sw, err := f.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	var csvBuf, jsonlBuf, sumBuf bytes.Buffer
	tbl, err := sweep.Engine{}.Run(sw, sweep.NewCSVSink(&csvBuf), sweep.NewJSONLSink(&jsonlBuf))
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.WriteSummary(&sumBuf); err != nil {
		t.Fatal(err)
	}
	return csvBuf.Bytes(), jsonlBuf.Bytes(), sumBuf.Bytes()
}

// TestSubmitStreamSummary is the end-to-end happy path: submit a spec,
// stream the rows live (the request lands while the sweep runs), and
// check CSV, NDJSON and the text summary are byte-identical to what
// the batch CLI path produces for the same spec.
func TestSubmitStreamSummary(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	wantCSV, wantJSONL, wantSummary := batchBytes(t, smokeSpec)

	st := submit(t, ts, smokeSpec)
	if st.State != StateQueued && st.State != StateRunning {
		t.Fatalf("fresh job state = %s", st.State)
	}
	if st.Points != 2 || st.GridSize != 2 {
		t.Fatalf("job sized %d/%d, want 2/2", st.Points, st.GridSize)
	}

	// Stream immediately — this exercises the live follow loop.
	code, gotCSV := fetch(t, ts, "/v1/sweeps/"+st.ID+"/rows", "text/csv")
	if code != http.StatusOK {
		t.Fatalf("rows: %d: %s", code, gotCSV)
	}
	if !bytes.Equal(gotCSV, wantCSV) {
		t.Errorf("streamed CSV differs from batch:\n--- daemon ---\n%s--- batch ---\n%s", gotCSV, wantCSV)
	}

	final := waitState(t, ts, st.ID, func(s jobStatus) bool { return terminal(s.State) })
	if final.State != StateDone || final.Emitted != 2 || final.Computed != 2 || final.Cached != 0 {
		t.Fatalf("final status %+v", final)
	}

	code, gotJSONL := fetch(t, ts, "/v1/sweeps/"+st.ID+"/rows", "application/x-ndjson")
	if code != http.StatusOK {
		t.Fatalf("ndjson rows: %d", code)
	}
	if !bytes.Equal(gotJSONL, wantJSONL) {
		t.Errorf("streamed NDJSON differs from batch:\n--- daemon ---\n%s--- batch ---\n%s", gotJSONL, wantJSONL)
	}

	code, gotSummary := fetch(t, ts, "/v1/sweeps/"+st.ID+"/summary", "text/plain")
	if code != http.StatusOK {
		t.Fatalf("summary: %d: %s", code, gotSummary)
	}
	if !bytes.Equal(gotSummary, wantSummary) {
		t.Errorf("text summary differs from the CLI block:\n--- daemon ---\n%s--- batch ---\n%s", gotSummary, wantSummary)
	}

	code, jsonSummary := fetch(t, ts, "/v1/sweeps/"+st.ID+"/summary", "")
	if code != http.StatusOK {
		t.Fatalf("json summary: %d", code)
	}
	var sum struct {
		Best      json.RawMessage `json:"best"`
		Marginals []struct {
			Dimension string `json:"dimension"`
		} `json:"marginals"`
	}
	if err := json.Unmarshal(jsonSummary, &sum); err != nil {
		t.Fatalf("json summary: %v\n%s", err, jsonSummary)
	}
	if len(sum.Marginals) != 1 || sum.Marginals[0].Dimension != "gamma" {
		t.Errorf("json summary marginals = %s", jsonSummary)
	}
}

// TestCacheReplayAndOverlapDelta pins the tentpole cache contract:
// resubmitting the same grid replays every point from the cache with
// byte-identical rows, and a superset grid computes only the delta.
func TestCacheReplayAndOverlapDelta(t *testing.T) {
	_, ts := newTestServer(t, Options{})

	first := submit(t, ts, smokeSpec)
	waitState(t, ts, first.ID, func(s jobStatus) bool { return s.State == StateDone })
	_, firstCSV := fetch(t, ts, "/v1/sweeps/"+first.ID+"/rows", "text/csv")

	// Same grid again: zero points computed, identical bytes.
	second := submit(t, ts, smokeSpec)
	fin := waitState(t, ts, second.ID, func(s jobStatus) bool { return s.State == StateDone })
	if fin.Cached != 2 || fin.Computed != 0 {
		t.Fatalf("resubmission cached/computed = %d/%d, want 2/0", fin.Cached, fin.Computed)
	}
	_, secondCSV := fetch(t, ts, "/v1/sweeps/"+second.ID+"/rows", "text/csv")
	if !bytes.Equal(firstCSV, secondCSV) {
		t.Errorf("cache replay is not byte-identical:\n--- first ---\n%s--- second ---\n%s", firstCSV, secondCSV)
	}
	if first.BaseHash == "" || first.BaseHash != fin.BaseHash {
		t.Errorf("base hashes differ across identical submissions: %q vs %q", first.BaseHash, fin.BaseHash)
	}

	// A superset grid — different submission name, one new coordinate —
	// replays the overlap and computes exactly the delta.
	superset := `{
	  "name": "smoke-superset",
	  "base": {"kind": "trace"},
	  "dimensions": [{"gammas": [2, 4, 8]}]
	}`
	third := submit(t, ts, superset)
	fin3 := waitState(t, ts, third.ID, func(s jobStatus) bool { return s.State == StateDone })
	if fin3.Cached != 2 || fin3.Computed != 1 {
		t.Fatalf("superset cached/computed = %d/%d, want 2/1", fin3.Cached, fin3.Computed)
	}
	wantCSV, _, _ := batchBytes(t, superset)
	_, gotCSV := fetch(t, ts, "/v1/sweeps/"+third.ID+"/rows", "text/csv")
	if !bytes.Equal(gotCSV, wantCSV) {
		t.Errorf("superset rows (2 cached + 1 computed) differ from a cold batch run:\n--- daemon ---\n%s--- batch ---\n%s",
			gotCSV, wantCSV)
	}
}

// slowSpec is a grid big enough to still be running when the test
// reacts to its first emitted row.
const slowSpec = `{
  "name": "slow",
  "base": {"kind": "trace"},
  "dimensions": [{"gammas": [1, 2, 4, 8]}, {"seeds": [1, 2, 3, 4]}]
}`

// TestCancel covers both cancellation paths: a queued job (behind the
// single executor) cancels immediately; a running job stops early with
// a valid emitted prefix.
func TestCancel(t *testing.T) {
	_, ts := newTestServer(t, Options{Jobs: 1, CachePoints: -1})

	running := submit(t, ts, slowSpec)
	waitState(t, ts, running.ID, func(s jobStatus) bool { return s.Emitted >= 1 })

	// The executor is busy, so this one is deterministically queued.
	queued := submit(t, ts, smokeSpec)
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sweeps/"+queued.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var st jobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || st.State != StateCancelled {
		t.Fatalf("queued cancel: %d, state %s (want %s)", resp.StatusCode, st.State, StateCancelled)
	}

	// Now cancel the running sweep mid-flight.
	req, err = http.NewRequest(http.MethodDelete, ts.URL+"/v1/sweeps/"+running.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	fin := waitState(t, ts, running.ID, func(s jobStatus) bool { return terminal(s.State) })
	if fin.State != StateCancelled {
		t.Fatalf("running job ended %s, want %s", fin.State, StateCancelled)
	}
	if fin.Emitted >= 16 {
		t.Fatalf("cancelled job emitted all %d points — stop had no effect", fin.Emitted)
	}

	// Its rows endpoint still serves the valid prefix it did emit.
	code, rows := fetch(t, ts, "/v1/sweeps/"+running.ID+"/rows", "text/csv")
	if code != http.StatusOK {
		t.Fatalf("rows after cancel: %d", code)
	}
	lines := strings.Split(strings.TrimRight(string(rows), "\n"), "\n")
	if len(lines) != 1+fin.Emitted {
		t.Errorf("cancelled rows stream has %d lines, want header + %d rows", len(lines), fin.Emitted)
	}
}

// TestSubmitRejections covers the refusal paths: malformed specs with
// the offending entry named, oversized bodies, full queues, bad
// methods, unknown ids and unacceptable Accept headers.
func TestSubmitRejections(t *testing.T) {
	_, ts := newTestServer(t, Options{MaxSpecBytes: 2048})

	post := func(body string) (int, string) {
		resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}

	if code, body := post(`{not json`); code != http.StatusBadRequest {
		t.Errorf("bad JSON: %d %s", code, body)
	}
	if code, body := post(`{"dimensions": [{"gammas": [2]}], "bogus": 1}`); code != http.StatusBadRequest || !strings.Contains(body, "bogus") {
		t.Errorf("unknown field: %d %s — must name the entry", code, body)
	}
	if code, body := post(`{"dimensions": [{"gammas": [2], "counts": [3]}]}`); code != http.StatusBadRequest || !strings.Contains(body, "dimensions[0]") {
		t.Errorf("two-axis dimension: %d %s — must name the block", code, body)
	}
	if code, body := post(`{"base": {"kind": "trace", "relays": 7}, "dimensions": [{"gammas": [2]}]}`); code != http.StatusBadRequest || !strings.Contains(body, "relays") {
		t.Errorf("kind-mismatched field: %d %s — must name the field", code, body)
	}
	big := `{"name": "` + strings.Repeat("x", 4096) + `", "dimensions": [{"gammas": [2]}]}`
	if code, body := post(big); code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized spec: %d %s", code, body)
	}

	if code, body := fetch(t, ts, "/v1/sweeps/sweep-000099", ""); code != http.StatusNotFound {
		t.Errorf("unknown id: %d %s", code, string(body))
	}
	if code, body := fetch(t, ts, "/v1/sweeps/sweep-000099/rows", ""); code != http.StatusNotFound {
		t.Errorf("unknown id rows: %d %s", code, string(body))
	}

	req, _ := http.NewRequest(http.MethodPut, ts.URL+"/v1/sweeps", strings.NewReader("{}"))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("PUT collection: %d", resp.StatusCode)
	}

	st := submit(t, ts, smokeSpec)
	waitState(t, ts, st.ID, func(s jobStatus) bool { return terminal(s.State) })
	if code, body := fetch(t, ts, "/v1/sweeps/"+st.ID+"/rows", "application/parquet"); code != http.StatusNotAcceptable {
		t.Errorf("bad accept: %d %s", code, string(body))
	}
	if code, _ := fetch(t, ts, "/v1/sweeps/"+st.ID+"/nonsense", ""); code != http.StatusNotFound {
		t.Errorf("unknown subresource: %d", code)
	}
}

// TestSummaryBeforeDone pins the 409 contract: the summary exists only
// once the sweep is terminal.
func TestSummaryBeforeDone(t *testing.T) {
	_, ts := newTestServer(t, Options{Jobs: 1})
	running := submit(t, ts, slowSpec)
	waitState(t, ts, running.ID, func(s jobStatus) bool { return s.Emitted >= 1 })
	code, body := fetch(t, ts, "/v1/sweeps/"+running.ID+"/summary", "text/plain")
	if code != http.StatusConflict {
		t.Errorf("summary mid-run: %d %s", code, string(body))
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sweeps/"+running.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	waitState(t, ts, running.ID, func(s jobStatus) bool { return terminal(s.State) })
}

// TestHealthzAndList sanity-checks the liveness and listing endpoints.
func TestHealthzAndList(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	st := submit(t, ts, smokeSpec)
	waitState(t, ts, st.ID, func(s jobStatus) bool { return terminal(s.State) })

	code, body := fetch(t, ts, "/v1/healthz", "")
	if code != http.StatusOK {
		t.Fatalf("healthz: %d", code)
	}
	var health struct {
		OK    bool `json:"ok"`
		Jobs  int  `json:"jobs"`
		Cache struct {
			Points int `json:"points"`
		} `json:"cache"`
	}
	if err := json.Unmarshal(body, &health); err != nil {
		t.Fatalf("healthz: %v\n%s", err, body)
	}
	if !health.OK || health.Jobs != 1 || health.Cache.Points != 2 {
		t.Errorf("healthz = %s", body)
	}

	code, body = fetch(t, ts, "/v1/sweeps", "")
	if code != http.StatusOK {
		t.Fatalf("list: %d", code)
	}
	var list struct {
		Sweeps []jobStatus `json:"sweeps"`
	}
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Sweeps) != 1 || list.Sweeps[0].ID != st.ID {
		t.Errorf("list = %s", body)
	}
}

// TestJobEviction checks that finished jobs are evicted past MaxJobs
// while their cached points keep serving replays.
func TestJobEviction(t *testing.T) {
	_, ts := newTestServer(t, Options{MaxJobs: 2})
	var ids []string
	for i := 0; i < 3; i++ {
		st := submit(t, ts, smokeSpec)
		waitState(t, ts, st.ID, func(s jobStatus) bool { return terminal(s.State) })
		ids = append(ids, st.ID)
	}
	if code, _ := fetch(t, ts, "/v1/sweeps/"+ids[0], ""); code != http.StatusNotFound {
		t.Errorf("oldest job survived eviction: %d", code)
	}
	if code, _ := fetch(t, ts, "/v1/sweeps/"+ids[2], ""); code != http.StatusOK {
		t.Errorf("newest job evicted: %d", code)
	}
	// The evicted job's points still serve from the cache.
	last := getStatus(t, ts, ids[2])
	if last.Cached != 2 || last.Computed != 0 {
		t.Errorf("third run cached/computed = %d/%d, want 2/0", last.Cached, last.Computed)
	}
}

// TestQueueFull pins the backpressure contract: submissions beyond the
// queue depth are refused with 503, not silently dropped.
func TestQueueFull(t *testing.T) {
	_, ts := newTestServer(t, Options{Jobs: 1, QueueDepth: 1, CachePoints: -1})
	running := submit(t, ts, slowSpec)
	waitState(t, ts, running.ID, func(s jobStatus) bool { return s.Emitted >= 1 })
	queued := submit(t, ts, smokeSpec) // fills the queue

	resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader(smokeSpec))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overflow submit: %d %s", resp.StatusCode, body)
	}

	// Unwind: cancel both so Close doesn't wait on the full grid.
	for _, id := range []string{queued.ID, running.ID} {
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sweeps/"+id, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	waitState(t, ts, running.ID, func(s jobStatus) bool { return terminal(s.State) })
}
