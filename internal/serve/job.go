package serve

import (
	"errors"
	"sync"
	"sync/atomic"

	"circuitstart/internal/spec"
	"circuitstart/internal/sweep"
)

// Job states. A job moves queued → running → one of the terminal
// states; DELETE moves a queued job straight to cancelled.
const (
	StateQueued    = "queued"
	StateRunning   = "running"
	StateDone      = "done"
	StateFailed    = "failed"
	StateCancelled = "cancelled"
)

// pointRows is one emitted grid point in wire-ready form: everything a
// rows stream needs to replay it byte-identically, nothing else (the
// full scenario Result is dropped so retained jobs stay bounded).
type pointRows struct {
	index  int
	coords []string
	arms   []sweep.ArmPoint
}

// job is one submitted sweep. The engine goroutine appends rows in
// grid order; any number of rows streams follow them live via the
// notify channel (closed and replaced on every append — a broadcast
// that, unlike sync.Cond, composes with context cancellation).
type job struct {
	id       string
	file     *spec.File
	sw       sweep.Sweep
	baseHash string
	meta     sweep.Meta

	cancel atomic.Bool

	mu       sync.Mutex
	notify   chan struct{}
	state    string
	rows     []pointRows
	cached   int // points served from the cache
	computed int // points actually executed
	tbl      *sweep.Table
	errMsg   string
}

func (j *job) broadcastLocked() {
	close(j.notify)
	j.notify = make(chan struct{})
}

// snapshot returns the fields the status endpoint reports.
func (j *job) snapshot() jobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return jobStatus{
		ID:         j.id,
		Name:       j.meta.Name,
		State:      j.state,
		Dimensions: j.meta.Dimensions,
		GridSize:   j.meta.GridSize,
		Points:     j.meta.Points,
		Emitted:    len(j.rows),
		Cached:     j.cached,
		Computed:   j.computed,
		BaseHash:   j.baseHash,
		Error:      j.errMsg,
	}
}

// jobStatus is the wire form of GET /v1/sweeps/{id}.
type jobStatus struct {
	ID         string   `json:"id"`
	Name       string   `json:"name"`
	State      string   `json:"state"`
	Dimensions []string `json:"dimensions"`
	GridSize   int      `json:"grid_size"`
	Points     int      `json:"points"`
	Emitted    int      `json:"emitted"`
	Cached     int      `json:"cached"`
	Computed   int      `json:"computed"`
	BaseHash   string   `json:"base_hash"`
	Error      string   `json:"error,omitempty"`
}

// collector is the engine sink that feeds a job's row log. It runs on
// the engine's emit goroutine, strictly in grid order, and doubles as
// the cache writer: every computed point is inserted under its content
// key as it is emitted.
type collector struct {
	job   *job
	cache *pointCache
}

func (c *collector) Begin(meta sweep.Meta) error { return nil }

func (c *collector) Point(pr *sweep.PointResult) error {
	key := spec.PointKey(c.job.baseHash, c.job.meta.Dimensions, pr.Point.Coords)
	computed := pr.Result != nil
	if computed {
		c.cache.put(key, pr.Arms)
	}
	j := c.job
	j.mu.Lock()
	j.rows = append(j.rows, pointRows{index: pr.Point.Index, coords: pr.Point.Coords, arms: pr.Arms})
	if computed {
		j.computed++
	} else {
		j.cached++
	}
	j.broadcastLocked()
	j.mu.Unlock()
	return nil
}

func (c *collector) Flush() error { return nil }

// run executes the job on the sweep engine. Cached points are replayed
// through the engine's Lookup hook — the hash-keyed generalization of
// Resume — so their rows come out byte-identical to the run that
// computed them, and only the grid delta costs simulation time.
func (j *job) run(workers, pointWorkers int, cache *pointCache) {
	j.mu.Lock()
	if j.state != StateQueued {
		j.mu.Unlock()
		return
	}
	j.state = StateRunning
	j.broadcastLocked()
	j.mu.Unlock()

	col := &collector{job: j, cache: cache}
	eng := sweep.Engine{
		Workers:      workers,
		PointWorkers: pointWorkers,
		Lookup: func(pt sweep.Point) ([]sweep.ArmPoint, bool) {
			return cache.get(spec.PointKey(j.baseHash, j.meta.Dimensions, pt.Coords))
		},
		Stop: j.cancel.Load,
	}
	tbl, err := eng.Run(j.sw, col)

	j.mu.Lock()
	j.tbl = tbl
	switch {
	case errors.Is(err, sweep.ErrStopped):
		j.state = StateCancelled
	case err != nil:
		j.state = StateFailed
		j.errMsg = err.Error()
	default:
		j.state = StateDone
	}
	j.broadcastLocked()
	j.mu.Unlock()
}

// terminal reports whether the state accepts no further rows.
func terminal(state string) bool {
	return state == StateDone || state == StateFailed || state == StateCancelled
}
