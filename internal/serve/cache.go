package serve

import (
	"sync"

	"circuitstart/internal/sweep"
)

// CacheStats is a snapshot of the point cache's counters.
type CacheStats struct {
	Points int   `json:"points"`
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
}

// pointCache holds completed grid points keyed by their content hash
// (spec.PointKey): the canonical base spec plus the point's ordered
// (dimension, coordinate) pairs. Because the key hashes the fully
// resolved scenario identity — not the submission — overlapping grids
// from different sweeps share entries, and a resubmission replays its
// cached points byte-identically while computing only the delta.
//
// Eviction is FIFO by insertion order: the cache is a replay buffer,
// not an LRU — determinism of what a hit returns matters more than hit
// rate, and FIFO keeps eviction independent of request order.
type pointCache struct {
	mu     sync.Mutex
	max    int
	points map[string][]sweep.ArmPoint
	order  []string
	hits   int64
	misses int64
}

func newPointCache(max int) *pointCache {
	return &pointCache{max: max, points: make(map[string][]sweep.ArmPoint)}
}

// get returns the cached per-arm rows for key, if present.
func (c *pointCache) get(key string) ([]sweep.ArmPoint, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	arms, ok := c.points[key]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return arms, ok
}

// put stores one completed point, evicting the oldest entries past max.
func (c *pointCache) put(key string, arms []sweep.ArmPoint) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.points[key]; ok {
		return
	}
	c.points[key] = arms
	c.order = append(c.order, key)
	for c.max > 0 && len(c.order) > c.max {
		delete(c.points, c.order[0])
		c.order = c.order[1:]
	}
}

func (c *pointCache) stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Points: len(c.points), Hits: c.hits, Misses: c.misses}
}
