package onion

import (
	"testing"

	"circuitstart/internal/cell"
)

type benchRand struct{ ctr byte }

func (r *benchRand) Read(p []byte) (int, error) {
	for i := range p {
		r.ctr += 31
		p[i] = r.ctr ^ byte(i)
	}
	return len(p), nil
}

// BenchmarkSealVerify isolates the running-digest pair: seal on one
// side, verify (with the state snapshot) on the other.
func BenchmarkSealVerify(b *testing.B) {
	rnd := &benchRand{}
	id, err := NewIdentity(rnd)
	if err != nil {
		b.Fatal(err)
	}
	ck, create, err := ClientHandshake(rnd, id.Public())
	if err != nil {
		b.Fatal(err)
	}
	rk, err := id.RelayHandshake(create)
	if err != nil {
		b.Fatal(err)
	}
	c := &cell.Cell{}
	data := make([]byte, cell.MaxRelayData)
	if err := c.SetRelay(cell.RelayHeader{Cmd: cell.RelayData, StreamID: 1}, data); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(cell.Size)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ck.SealForward(c)
		if !rk.VerifyForward(c) {
			b.Fatal("digest mismatch")
		}
	}
}

// BenchmarkDecryptForward measures the relay-side cost per cell: one
// layer of stream decryption.
func BenchmarkDecryptForward(b *testing.B) {
	rnd := &benchRand{}
	id, err := NewIdentity(rnd)
	if err != nil {
		b.Fatal(err)
	}
	_, create, err := ClientHandshake(rnd, id.Public())
	if err != nil {
		b.Fatal(err)
	}
	rk, err := id.RelayHandshake(create)
	if err != nil {
		b.Fatal(err)
	}
	c := &cell.Cell{}
	b.SetBytes(cell.Size)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rk.DecryptForward(c)
	}
}

// BenchmarkHandshake measures full circuit key establishment (3 hops).
func BenchmarkHandshake(b *testing.B) {
	rnd := &benchRand{}
	idents := make([]*Identity, 3)
	for i := range idents {
		id, err := NewIdentity(rnd)
		if err != nil {
			b.Fatal(err)
		}
		idents[i] = id
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := BuildCircuit(rnd, idents); err != nil {
			b.Fatal(err)
		}
	}
}
