package onion

import (
	"errors"
	"fmt"
	"io"

	"circuitstart/internal/cell"
)

// CircuitCrypto is the client-side view of a circuit's layered keys:
// one HopKeys per relay, ordered from the first hop (guard) to the last
// (exit). The client encrypts forward cells with every layer (innermost
// = exit) and peels backward cells one layer per hop.
type CircuitCrypto struct {
	hops []*HopKeys
}

// ErrNotRecognized is returned when a backward cell fails to become
// recognized at any hop — in a healthy circuit this means corruption.
var ErrNotRecognized = errors.New("onion: backward cell not recognized at any hop")

// NewCircuitCrypto assembles the client's layered state from per-hop
// keys (guard first).
func NewCircuitCrypto(hops []*HopKeys) *CircuitCrypto {
	if len(hops) == 0 {
		panic("onion: circuit with zero hops")
	}
	return &CircuitCrypto{hops: hops}
}

// Len returns the number of hops.
func (cc *CircuitCrypto) Len() int { return len(cc.hops) }

// Hop returns the keys of hop i (0 = guard).
func (cc *CircuitCrypto) Hop(i int) *HopKeys { return cc.hops[i] }

// WrapForward seals a plaintext relay cell for the exit hop and applies
// every layer of forward encryption, outermost last. After WrapForward
// the cell is ready for the first hop.
func (cc *CircuitCrypto) WrapForward(c *cell.Cell) {
	exit := cc.hops[len(cc.hops)-1]
	exit.SealForward(c)
	for i := len(cc.hops) - 1; i >= 0; i-- {
		cc.hops[i].EncryptForward(c)
	}
}

// UnwrapBackward peels backward layers from a cell received from the
// first hop, one per hop, until it becomes recognized (recognized field
// zero and digest valid). It returns the index of the hop that
// originated the cell. In this implementation only the exit originates
// backward data, but the API supports leaky-pipe circuits as in Tor.
func (cc *CircuitCrypto) UnwrapBackward(c *cell.Cell) (int, error) {
	for i := 0; i < len(cc.hops); i++ {
		cc.hops[i].DecryptBackward(c)
		hdr, _, err := c.Relay()
		if err == nil && hdr.Recognized == 0 && cc.hops[i].VerifyBackward(c) {
			return i, nil
		}
	}
	return 0, ErrNotRecognized
}

// BuildCircuit performs the client side of key establishment with each
// relay identity in path order and returns the client's circuit crypto
// plus each relay's derived keys.
//
// The exchange itself is synchronous here: network cost of circuit
// construction is accounted separately by the simulation (see
// core.Config.BuildDelay), because the paper's evaluation starts from
// established circuits.
func BuildCircuit(rand io.Reader, relays []*Identity) (*CircuitCrypto, []*HopKeys, error) {
	if len(relays) == 0 {
		return nil, nil, errors.New("onion: BuildCircuit with empty path")
	}
	clientHops := make([]*HopKeys, len(relays))
	relayHops := make([]*HopKeys, len(relays))
	for i, id := range relays {
		ck, create, err := ClientHandshake(rand, id.Public())
		if err != nil {
			return nil, nil, fmt.Errorf("onion: hop %d handshake: %w", i, err)
		}
		rk, err := id.RelayHandshake(create)
		if err != nil {
			return nil, nil, fmt.Errorf("onion: hop %d responder: %w", i, err)
		}
		clientHops[i] = ck
		relayHops[i] = rk
	}
	return NewCircuitCrypto(clientHops), relayHops, nil
}
