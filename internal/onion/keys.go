// Package onion implements the cryptographic core of onion routing:
// per-hop key establishment (X25519), key derivation (SHA-256 based,
// after Tor's KDF-TOR), layered AES-CTR encryption, and the per-hop
// running digest that lets the final hop recognize and authenticate
// fully-peeled relay cells.
//
// Congestion behaviour — the paper's subject — does not depend on
// cryptography, but the data path of a faithful reproduction does: every
// cell a relay forwards is really decrypted/encrypted one layer, and the
// exit verifies integrity. This keeps the simulated relays honest about
// per-cell work and makes the substrate reusable.
package onion

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/ecdh"
	"crypto/sha256"
	"errors"
	"fmt"
	"hash"
	"io"

	"circuitstart/internal/cell"
)

// Key sizes.
const (
	// KeyLen is the AES-128 key length used for layer ciphers.
	KeyLen = 16
	// IVLen is the AES-CTR IV length.
	IVLen = aes.BlockSize
	// DigestSeedLen seeds each direction's running digest.
	DigestSeedLen = 20
)

// Identity is a relay's long-term X25519 identity used in handshakes.
type Identity struct {
	priv *ecdh.PrivateKey
}

// NewIdentity generates a relay identity from the given entropy source.
func NewIdentity(rand io.Reader) (*Identity, error) {
	priv, err := ecdh.X25519().GenerateKey(rand)
	if err != nil {
		return nil, fmt.Errorf("onion: generating identity: %w", err)
	}
	return &Identity{priv: priv}, nil
}

// Public returns the identity's public key bytes (32 bytes).
func (id *Identity) Public() []byte { return id.priv.PublicKey().Bytes() }

// HopKeys is one side's directional key material for a single hop:
// a forward cipher (client → exit direction), a backward cipher, and
// running digests for each direction.
//
// The scratch fields make the per-cell operations (Seal*, Verify*)
// allocation-free in steady state: sum receives hash.Sum output, snap
// holds the serialized running-digest state a verification must be able
// to roll back to. Both retain their capacity across cells.
type HopKeys struct {
	fwd, bwd cipher.Stream
	fwdDig   hash.Hash
	bwdDig   hash.Hash

	sum  []byte // scratch for hash.Sum (cap sha256.Size after first use)
	snap []byte // scratch for the pre-verify digest-state snapshot
}

// kdf expands a shared secret plus context into derived key material,
// following the spirit of Tor's KDF-TOR: K = H(secret | ctx | 0) |
// H(secret | ctx | 1) | ...
func kdf(secret, ctx []byte, n int) []byte {
	out := make([]byte, 0, n)
	var counter byte
	for len(out) < n {
		h := sha256.New()
		h.Write(secret)
		h.Write(ctx)
		h.Write([]byte{counter})
		out = h.Sum(out)
		counter++
	}
	return out[:n]
}

// deriveHopKeys builds the directional ciphers and digests from a shared
// secret. Both sides of a handshake call this with identical inputs and
// obtain identical state.
func deriveHopKeys(secret, ctx []byte) (*HopKeys, error) {
	const need = 2*KeyLen + 2*IVLen + 2*DigestSeedLen
	km := kdf(secret, ctx, need)
	fk, km := km[:KeyLen], km[KeyLen:]
	bk, km := km[:KeyLen], km[KeyLen:]
	fiv, km := km[:IVLen], km[IVLen:]
	biv, km := km[:IVLen], km[IVLen:]
	fds, km := km[:DigestSeedLen], km[DigestSeedLen:]
	bds := km[:DigestSeedLen]

	fc, err := aes.NewCipher(fk)
	if err != nil {
		return nil, err
	}
	bc, err := aes.NewCipher(bk)
	if err != nil {
		return nil, err
	}
	hk := &HopKeys{
		fwd:    cipher.NewCTR(fc, fiv),
		bwd:    cipher.NewCTR(bc, biv),
		fwdDig: sha256.New(),
		bwdDig: sha256.New(),
	}
	hk.fwdDig.Write(fds)
	hk.bwdDig.Write(bds)
	return hk, nil
}

// Handshake errors.
var (
	ErrBadHandshake = errors.New("onion: malformed handshake message")
)

// ClientHandshake initiates key establishment with a relay identified by
// relayPub. It returns the client's hop keys and the CREATE payload to
// send to the relay (the client's ephemeral public key).
func ClientHandshake(rand io.Reader, relayPub []byte) (*HopKeys, []byte, error) {
	eph, err := ecdh.X25519().GenerateKey(rand)
	if err != nil {
		return nil, nil, fmt.Errorf("onion: ephemeral key: %w", err)
	}
	rp, err := ecdh.X25519().NewPublicKey(relayPub)
	if err != nil {
		return nil, nil, fmt.Errorf("onion: relay public key: %w", err)
	}
	secret, err := eph.ECDH(rp)
	if err != nil {
		return nil, nil, fmt.Errorf("onion: ECDH: %w", err)
	}
	ctx := append(append([]byte{}, eph.PublicKey().Bytes()...), relayPub...)
	keys, err := deriveHopKeys(secret, ctx)
	if err != nil {
		return nil, nil, err
	}
	return keys, eph.PublicKey().Bytes(), nil
}

// RelayHandshake is the responder side: given the CREATE payload
// (client's ephemeral public key), it derives the same hop keys.
func (id *Identity) RelayHandshake(createPayload []byte) (*HopKeys, error) {
	if len(createPayload) != 32 {
		return nil, ErrBadHandshake
	}
	cp, err := ecdh.X25519().NewPublicKey(createPayload)
	if err != nil {
		return nil, ErrBadHandshake
	}
	secret, err := id.priv.ECDH(cp)
	if err != nil {
		return nil, fmt.Errorf("onion: ECDH: %w", err)
	}
	ctx := append(append([]byte{}, createPayload...), id.Public()...)
	return deriveHopKeys(secret, ctx)
}

// EncryptForward applies this hop's forward cipher to the cell payload
// in place (one onion layer).
func (k *HopKeys) EncryptForward(c *cell.Cell) { k.fwd.XORKeyStream(c.Payload[:], c.Payload[:]) }

// DecryptForward removes this hop's forward layer in place. AES-CTR is
// an involution under the same keystream, but the relay and client hold
// independent stream states, so encrypt/decrypt are distinct calls that
// must each observe every cell exactly once, in order.
func (k *HopKeys) DecryptForward(c *cell.Cell) { k.fwd.XORKeyStream(c.Payload[:], c.Payload[:]) }

// EncryptBackward applies this hop's backward cipher in place.
func (k *HopKeys) EncryptBackward(c *cell.Cell) { k.bwd.XORKeyStream(c.Payload[:], c.Payload[:]) }

// DecryptBackward removes this hop's backward layer in place.
func (k *HopKeys) DecryptBackward(c *cell.Cell) { k.bwd.XORKeyStream(c.Payload[:], c.Payload[:]) }

// SealForward computes and stores the running digest for a plaintext
// relay payload about to be sent forward by the endpoint that owns the
// innermost layer relationship with this hop (the sender side of the
// forward digest). Must be called before encryption, on the plaintext.
func (k *HopKeys) SealForward(c *cell.Cell) {
	k.seal(k.fwdDig, c)
}

// VerifyForward checks a fully-decrypted forward cell's digest at the
// recognizing hop. It must be called on the plaintext, and it advances
// the running digest state on success. On failure the digest state is
// unchanged and false is returned.
func (k *HopKeys) VerifyForward(c *cell.Cell) bool {
	return k.verify(k.fwdDig, c)
}

// SealBackward is SealForward for the backward direction.
func (k *HopKeys) SealBackward(c *cell.Cell) {
	k.seal(k.bwdDig, c)
}

// VerifyBackward is VerifyForward for the backward direction.
func (k *HopKeys) VerifyBackward(c *cell.Cell) bool {
	return k.verify(k.bwdDig, c)
}

// seal computes the digest of the payload (with a zeroed digest field)
// under the running hash, stores it, and advances the running state.
// The sum lands in the reusable scratch, so sealing allocates nothing.
func (k *HopKeys) seal(h hash.Hash, c *cell.Cell) {
	c.ZeroDigest()
	h.Write(c.Payload[:])
	k.sum = h.Sum(k.sum[:0])
	var d [4]byte
	copy(d[:], k.sum[:4])
	c.SetDigest(d)
}

// verify recomputes the digest the sender would have stored. The running
// state is snapshotted into the reusable scratch first; the payload
// (digest field zeroed) then advances the real state, which is rolled
// back from the snapshot if the digest does not match. Steady state
// (matching digests, a Go 1.24+ runtime) allocates nothing.
func (k *HopKeys) verify(h hash.Hash, c *cell.Cell) bool {
	want := c.PayloadDigestField()
	c.ZeroDigest()

	k.snap = snapshotHash(h, k.snap[:0])
	h.Write(c.Payload[:])
	k.sum = h.Sum(k.sum[:0])
	var got [4]byte
	copy(got[:], k.sum[:4])
	if got != want {
		// Roll back the running state.
		type restorer interface{ UnmarshalBinary([]byte) error }
		if err := h.(restorer).UnmarshalBinary(k.snap); err != nil {
			panic(fmt.Sprintf("onion: restoring digest state: %v", err))
		}
		c.SetDigest(want) // leave the cell as we found it
		return false
	}
	c.SetDigest(want)
	return true
}

// snapshotHash serializes a hash's running state into buf. It prefers
// the allocation-free AppendBinary (encoding.BinaryAppender, implemented
// by the SHA-256 state from Go 1.24) and falls back to MarshalBinary on
// older runtimes.
func snapshotHash(h hash.Hash, buf []byte) []byte {
	if a, ok := h.(interface {
		AppendBinary([]byte) ([]byte, error)
	}); ok {
		out, err := a.AppendBinary(buf)
		if err != nil {
			panic(fmt.Sprintf("onion: digest state not serializable: %v", err))
		}
		return out
	}
	m, ok := h.(interface{ MarshalBinary() ([]byte, error) })
	if !ok {
		panic("onion: digest state not serializable")
	}
	out, err := m.MarshalBinary()
	if err != nil {
		panic(fmt.Sprintf("onion: digest state not serializable: %v", err))
	}
	return append(buf, out...)
}
