package onion

import (
	"bytes"
	"crypto/rand"
	"math/big"
	mrand "math/rand"
	"testing"
	"testing/quick"

	"circuitstart/internal/cell"
)

func mustIdentity(t *testing.T) *Identity {
	t.Helper()
	id, err := NewIdentity(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func TestKDFDeterministicAndSized(t *testing.T) {
	a := kdf([]byte("secret"), []byte("ctx"), 100)
	b := kdf([]byte("secret"), []byte("ctx"), 100)
	if !bytes.Equal(a, b) {
		t.Error("kdf not deterministic")
	}
	if len(a) != 100 {
		t.Errorf("kdf returned %d bytes, want 100", len(a))
	}
	c := kdf([]byte("secret"), []byte("other"), 100)
	if bytes.Equal(a, c) {
		t.Error("kdf ignores context")
	}
	if got := kdf([]byte("s"), nil, 1); len(got) != 1 {
		t.Errorf("kdf(1) returned %d bytes", len(got))
	}
}

func TestHandshakeDerivesSharedKeys(t *testing.T) {
	id := mustIdentity(t)
	clientKeys, create, err := ClientHandshake(rand.Reader, id.Public())
	if err != nil {
		t.Fatal(err)
	}
	relayKeys, err := id.RelayHandshake(create)
	if err != nil {
		t.Fatal(err)
	}
	// Client encrypts forward; relay must decrypt to the original.
	c := &cell.Cell{Circ: 1}
	c.SetRelay(cell.RelayHeader{Cmd: cell.RelayData}, []byte("payload"))
	orig := c.Payload
	clientKeys.EncryptForward(c)
	if c.Payload == orig {
		t.Fatal("encryption was a no-op")
	}
	relayKeys.DecryptForward(c)
	if c.Payload != orig {
		t.Error("relay failed to decrypt client's forward cell")
	}
	// And backward: relay encrypts, client decrypts.
	relayKeys.EncryptBackward(c)
	clientKeys.DecryptBackward(c)
	if c.Payload != orig {
		t.Error("client failed to decrypt relay's backward cell")
	}
}

func TestRelayHandshakeRejectsBadPayload(t *testing.T) {
	id := mustIdentity(t)
	if _, err := id.RelayHandshake([]byte("short")); err != ErrBadHandshake {
		t.Errorf("err = %v, want ErrBadHandshake", err)
	}
	if _, err := id.RelayHandshake(make([]byte, 32)); err == nil {
		// All-zero is a low-order point; X25519 must reject it.
		t.Error("all-zero public key accepted")
	}
}

func TestHandshakeDistinctSessions(t *testing.T) {
	id := mustIdentity(t)
	k1, _, err := ClientHandshake(rand.Reader, id.Public())
	if err != nil {
		t.Fatal(err)
	}
	k2, _, err := ClientHandshake(rand.Reader, id.Public())
	if err != nil {
		t.Fatal(err)
	}
	c1 := &cell.Cell{}
	c2 := &cell.Cell{}
	k1.EncryptForward(c1)
	k2.EncryptForward(c2)
	if c1.Payload == c2.Payload {
		t.Error("two sessions produced identical keystreams")
	}
}

func buildTestCircuit(t *testing.T, nHops int) (*CircuitCrypto, []*HopKeys) {
	t.Helper()
	ids := make([]*Identity, nHops)
	for i := range ids {
		ids[i] = mustIdentity(t)
	}
	cc, relayKeys, err := BuildCircuit(rand.Reader, ids)
	if err != nil {
		t.Fatal(err)
	}
	return cc, relayKeys
}

func TestThreeHopForwardOnion(t *testing.T) {
	cc, relays := buildTestCircuit(t, 3)
	data := []byte("GET / HTTP/1.1")
	c := &cell.Cell{Circ: 9}
	c.SetRelay(cell.RelayHeader{Cmd: cell.RelayData, StreamID: 1}, data)
	cc.WrapForward(c)

	// Hop 0 and 1 peel a layer each; the cell must NOT be recognized
	// (recognized != 0 or digest mismatch) until the exit peels.
	for i := 0; i < 2; i++ {
		relays[i].DecryptForward(c)
		hdr, _, err := c.Relay()
		if err == nil && hdr.Recognized == 0 && relays[i].VerifyForward(c) {
			t.Fatalf("cell recognized early at hop %d", i)
		}
	}
	relays[2].DecryptForward(c)
	hdr, got, err := c.Relay()
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Recognized != 0 {
		t.Fatalf("exit sees recognized = %d", hdr.Recognized)
	}
	if !relays[2].VerifyForward(c) {
		t.Fatal("exit digest verification failed")
	}
	if !bytes.Equal(got, data) {
		t.Error("exit plaintext mismatch")
	}
	if hdr.StreamID != 1 || hdr.Cmd != cell.RelayData {
		t.Errorf("exit header = %+v", hdr)
	}
}

func TestThreeHopBackwardOnion(t *testing.T) {
	cc, relays := buildTestCircuit(t, 3)
	data := []byte("HTTP/1.1 200 OK")
	c := &cell.Cell{Circ: 9}
	c.SetRelay(cell.RelayHeader{Cmd: cell.RelayData, StreamID: 1}, data)
	// Exit seals and encrypts; middle and guard add their layers.
	relays[2].SealBackward(c)
	relays[2].EncryptBackward(c)
	relays[1].EncryptBackward(c)
	relays[0].EncryptBackward(c)

	hop, err := cc.UnwrapBackward(c)
	if err != nil {
		t.Fatal(err)
	}
	if hop != 2 {
		t.Errorf("recognized at hop %d, want 2 (exit)", hop)
	}
	_, got, err := c.Relay()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("client plaintext mismatch")
	}
}

func TestBackwardFromMiddleHop(t *testing.T) {
	// Leaky-pipe: a middle relay originates a backward cell.
	cc, relays := buildTestCircuit(t, 3)
	c := &cell.Cell{Circ: 9}
	c.SetRelay(cell.RelayHeader{Cmd: cell.RelaySendme}, nil)
	relays[1].SealBackward(c)
	relays[1].EncryptBackward(c)
	relays[0].EncryptBackward(c)
	hop, err := cc.UnwrapBackward(c)
	if err != nil {
		t.Fatal(err)
	}
	if hop != 1 {
		t.Errorf("recognized at hop %d, want 1", hop)
	}
}

func TestStreamOfCellsInOrder(t *testing.T) {
	cc, relays := buildTestCircuit(t, 3)
	const n = 50
	for i := 0; i < n; i++ {
		data := []byte{byte(i), byte(i >> 8), 0xCC}
		c := &cell.Cell{Circ: 1}
		c.SetRelay(cell.RelayHeader{Cmd: cell.RelayData}, data)
		cc.WrapForward(c)
		for h := 0; h < 3; h++ {
			relays[h].DecryptForward(c)
		}
		if !relays[2].VerifyForward(c) {
			t.Fatalf("cell %d failed digest", i)
		}
		_, got, err := c.Relay()
		if err != nil || !bytes.Equal(got, data) {
			t.Fatalf("cell %d corrupt: %v", i, err)
		}
	}
}

func TestDigestDetectsTampering(t *testing.T) {
	cc, relays := buildTestCircuit(t, 1)
	c := &cell.Cell{Circ: 1}
	c.SetRelay(cell.RelayHeader{Cmd: cell.RelayData}, []byte("important"))
	cc.WrapForward(c)
	c.Payload[100] ^= 0x01 // in-flight corruption
	relays[0].DecryptForward(c)
	if relays[0].VerifyForward(c) {
		t.Error("tampered cell passed digest verification")
	}
}

func TestVerifyRollbackKeepsStateConsistent(t *testing.T) {
	// A failed verification must not advance the running digest: the
	// next good cell must still verify.
	cc, relays := buildTestCircuit(t, 1)

	good1 := &cell.Cell{Circ: 1}
	good1.SetRelay(cell.RelayHeader{Cmd: cell.RelayData}, []byte("one"))
	cc.WrapForward(good1)

	good2 := &cell.Cell{Circ: 1}
	good2.SetRelay(cell.RelayHeader{Cmd: cell.RelayData}, []byte("two"))
	cc.WrapForward(good2)

	relays[0].DecryptForward(good1)
	tampered := *good1
	tampered.Payload[50] ^= 0xFF
	if relays[0].VerifyForward(&tampered) {
		t.Fatal("tampered cell verified")
	}
	if !relays[0].VerifyForward(good1) {
		t.Fatal("good cell failed after a rejected one (state advanced on failure)")
	}
	relays[0].DecryptForward(good2)
	if !relays[0].VerifyForward(good2) {
		t.Fatal("second good cell failed (state desynced)")
	}
}

func TestUnwrapBackwardUnrecognized(t *testing.T) {
	cc, _ := buildTestCircuit(t, 2)
	c := &cell.Cell{Circ: 1}
	for i := range c.Payload {
		c.Payload[i] = byte(i)
	}
	if _, err := cc.UnwrapBackward(c); err != ErrNotRecognized {
		t.Errorf("err = %v, want ErrNotRecognized", err)
	}
}

func TestBuildCircuitEmptyPath(t *testing.T) {
	if _, _, err := BuildCircuit(rand.Reader, nil); err == nil {
		t.Error("BuildCircuit(nil) succeeded")
	}
}

func TestNewCircuitCryptoPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for zero hops")
		}
	}()
	NewCircuitCrypto(nil)
}

func TestCircuitCryptoAccessors(t *testing.T) {
	cc, _ := buildTestCircuit(t, 3)
	if cc.Len() != 3 {
		t.Errorf("Len = %d", cc.Len())
	}
	for i := 0; i < 3; i++ {
		if cc.Hop(i) == nil {
			t.Errorf("Hop(%d) = nil", i)
		}
	}
}

// Property: for any hop count 1..5 and any payload, wrap + peel-at-each-
// relay recovers the plaintext exactly at the exit and nowhere earlier.
func TestPropertyOnionRoundTrip(t *testing.T) {
	f := func(nHopsRaw uint8, data []byte) bool {
		nHops := int(nHopsRaw)%5 + 1
		if len(data) > cell.MaxRelayData {
			data = data[:cell.MaxRelayData]
		}
		ids := make([]*Identity, nHops)
		for i := range ids {
			id, err := NewIdentity(rand.Reader)
			if err != nil {
				return false
			}
			ids[i] = id
		}
		cc, relays, err := BuildCircuit(rand.Reader, ids)
		if err != nil {
			return false
		}
		c := &cell.Cell{Circ: 5}
		if err := c.SetRelay(cell.RelayHeader{Cmd: cell.RelayData}, data); err != nil {
			return false
		}
		cc.WrapForward(c)
		for h := 0; h < nHops-1; h++ {
			relays[h].DecryptForward(c)
			hdr, _, err := c.Relay()
			if err == nil && hdr.Recognized == 0 && relays[h].VerifyForward(c) {
				return false // recognized early
			}
		}
		relays[nHops-1].DecryptForward(c)
		if !relays[nHops-1].VerifyForward(c) {
			return false
		}
		_, got, err := c.Relay()
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: backward direction round-trips from any hop index.
func TestPropertyBackwardFromAnyHop(t *testing.T) {
	rng := mrand.New(mrand.NewSource(11))
	for iter := 0; iter < 20; iter++ {
		nHops := rng.Intn(4) + 1
		origin := rng.Intn(nHops)
		ids := make([]*Identity, nHops)
		for i := range ids {
			id, err := NewIdentity(rand.Reader)
			if err != nil {
				t.Fatal(err)
			}
			ids[i] = id
		}
		cc, relays, err := BuildCircuit(rand.Reader, ids)
		if err != nil {
			t.Fatal(err)
		}
		data := big.NewInt(int64(iter * 31)).Bytes()
		c := &cell.Cell{}
		c.SetRelay(cell.RelayHeader{Cmd: cell.RelayData}, data)
		relays[origin].SealBackward(c)
		for h := origin; h >= 0; h-- {
			relays[h].EncryptBackward(c)
		}
		hop, err := cc.UnwrapBackward(c)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		if hop != origin {
			t.Fatalf("iter %d: recognized at %d, want %d", iter, hop, origin)
		}
	}
}
