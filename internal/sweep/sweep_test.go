package sweep_test

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"circuitstart/internal/experiments"
	"circuitstart/internal/scenario"
	"circuitstart/internal/sim"
	"circuitstart/internal/sweep"
	"circuitstart/internal/units"
	"circuitstart/internal/workload"
)

// traceBase is the distant-bottleneck single-circuit trace scenario the
// gamma ablation runs on, as a one-arm sweep base.
func traceBase(seed int64) scenario.Scenario {
	p := experiments.DefaultCwndTraceParams(3)
	p.Seed = seed
	return p.Scenario([]scenario.Arm{{Name: "trace"}})
}

// popBase is a small generated-population scenario cheap enough for
// grid tests.
func popBase(arms ...scenario.Arm) scenario.Scenario {
	pop := workload.DefaultRelayParams(8)
	return scenario.Scenario{
		Name:     "sweep-test",
		Seed:     7,
		Topology: scenario.Topology{Population: &pop},
		Circuits: scenario.CircuitSet{
			Count:        2,
			TransferSize: 50 * units.Kilobyte,
			Arrival:      scenario.Arrival{Kind: scenario.ArriveUniform, Spread: 50 * time.Millisecond},
		},
		Arms:    arms,
		Horizon: 120 * sim.Second,
	}
}

// captureSink retains every full PointResult for assertions the compact
// table drops.
type captureSink struct {
	meta    sweep.Meta
	results []*sweep.PointResult
}

func (c *captureSink) Begin(meta sweep.Meta) error { c.meta = meta; return nil }
func (c *captureSink) Point(pr *sweep.PointResult) error {
	c.results = append(c.results, pr)
	return nil
}
func (c *captureSink) Flush() error { return nil }

// TestGammaSweepReproducesAblation pins the acceptance contract: the
// fixed gamma ablation is a point query on the sweep engine. A 1-D γ
// sweep over the same base scenario reproduces AblationGamma's numbers
// exactly — same exit window, exit time, optimum, peak, final window
// and settle time per γ.
func TestGammaSweepReproducesAblation(t *testing.T) {
	gammas := []float64{1, 2, 4, 8, 16}
	rows, err := experiments.AblationGamma(42, gammas)
	if err != nil {
		t.Fatal(err)
	}

	cap := &captureSink{}
	tbl, err := sweep.Engine{Workers: 2}.Run(sweep.Sweep{
		Name:       "gamma",
		Base:       traceBase(42),
		Dimensions: []sweep.Dimension{sweep.Gamma(gammas...)},
	}, cap)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != len(gammas) || len(cap.results) != len(gammas) {
		t.Fatalf("sweep produced %d rows, %d results; want %d", len(tbl.Rows), len(cap.results), len(gammas))
	}
	for i, row := range rows {
		sr := tbl.Rows[i]
		if got, want := sr.Coords[0], strings.TrimPrefix(row.Label, "gamma="); got != want {
			t.Fatalf("point %d coord = %q, want %q", i, got, want)
		}
		if sr.ExitCwndMean != row.ExitCwnd {
			t.Errorf("gamma=%s: sweep exit cwnd %v, ablation %v", sr.Coords[0], sr.ExitCwndMean, row.ExitCwnd)
		}
		if sr.ExitTimeMedian != row.ExitTime.Seconds() {
			t.Errorf("gamma=%s: sweep exit time %v, ablation %v", sr.Coords[0], sr.ExitTimeMedian, row.ExitTime.Seconds())
		}
		o := cap.results[i].Result.Arms[0].Circuits[0]
		if o.OptimalCells != row.OptimalCells {
			t.Errorf("gamma=%s: optimal %v, ablation %v", sr.Coords[0], o.OptimalCells, row.OptimalCells)
		}
		if peak, ok := o.Trace.Max(); !ok || peak != row.PeakCells {
			t.Errorf("gamma=%s: peak %v, ablation %v", sr.Coords[0], peak, row.PeakCells)
		}
		if last, ok := o.Trace.Last(); !ok || last.Value != row.FinalCells {
			t.Errorf("gamma=%s: final %v, ablation %v", sr.Coords[0], last.Value, row.FinalCells)
		}
		settle := sim.Time(-1)
		if at, ok := o.Trace.ConvergeTime(o.OptimalCells, o.OptimalCells*0.5, 0.2); ok {
			settle = at
		}
		if settle != row.SettleTime {
			t.Errorf("gamma=%s: settle %v, ablation %v", sr.Coords[0], settle, row.SettleTime)
		}
	}
}

// TestSweepWorkerDeterminism pins the byte-identity contract: the same
// grid streamed through the CSV and JSONL sinks produces identical
// bytes for 1 worker and 8 workers.
func TestSweepWorkerDeterminism(t *testing.T) {
	run := func(workers int) (csv, jsonl string) {
		var cb, jb bytes.Buffer
		sw := sweep.Sweep{
			Name: "det",
			Base: popBase(scenario.Arm{Name: "circuitstart"}),
			Dimensions: []sweep.Dimension{
				sweep.Gamma(2, 4),
				sweep.TransferSizes(30*units.Kilobyte, 60*units.Kilobyte),
			},
		}
		if _, err := (sweep.Engine{Workers: workers}).Run(sw, sweep.NewCSVSink(&cb), sweep.NewJSONLSink(&jb)); err != nil {
			t.Fatal(err)
		}
		return cb.String(), jb.String()
	}
	csv1, jsonl1 := run(1)
	csv8, jsonl8 := run(8)
	if csv1 != csv8 {
		t.Errorf("CSV differs between 1 and 8 workers:\n--- 1 ---\n%s\n--- 8 ---\n%s", csv1, csv8)
	}
	if jsonl1 != jsonl8 {
		t.Errorf("JSONL differs between 1 and 8 workers:\n--- 1 ---\n%s\n--- 8 ---\n%s", jsonl1, jsonl8)
	}
	if lines := strings.Count(csv1, "\n"); lines != 1+4 {
		t.Errorf("CSV has %d lines, want header + 4 rows", lines)
	}
}

// TestSampleCap checks the sampling draw: deterministic, in grid
// order, of the requested size, and stable across worker counts.
func TestSampleCap(t *testing.T) {
	sw := sweep.Sweep{
		Name: "sampled",
		Base: traceBase(42),
		Dimensions: []sweep.Dimension{
			sweep.Gamma(1, 2, 4, 8),
			sweep.TransferSizes(1*units.Megabyte, 2*units.Megabyte),
		},
		Sample: 3,
	}
	pts, err := sw.Points()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("sampled %d points, want 3", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Index <= pts[i-1].Index {
			t.Fatalf("sample not in grid order: %d after %d", pts[i].Index, pts[i-1].Index)
		}
	}
	again, err := sw.Points()
	if err != nil {
		t.Fatal(err)
	}
	for i := range pts {
		if pts[i].Index != again[i].Index {
			t.Fatalf("sample draw not deterministic: %d vs %d at %d", pts[i].Index, again[i].Index, i)
		}
	}
}

// TestDimensionMismatch checks that an axis incompatible with the base
// fails at expansion with point context, before any trial runs.
func TestDimensionMismatch(t *testing.T) {
	sw := sweep.Sweep{
		Base:       traceBase(42), // explicit topology
		Dimensions: []sweep.Dimension{sweep.PopulationSizes(10, 20)},
	}
	_, err := sw.Points()
	if err == nil || !strings.Contains(err.Error(), "population") {
		t.Fatalf("expected population-axis error, got %v", err)
	}
	if _, err := (sweep.Engine{}).Run(sw); err == nil {
		t.Fatal("engine accepted a mismatched axis")
	}
}

// TestPoliciesValidation checks eager policy-name validation.
func TestPoliciesValidation(t *testing.T) {
	if _, err := sweep.Policies("circuitstart", "warp"); err == nil {
		t.Fatal("unknown policy accepted")
	}
	d, err := sweep.Policies("circuitstart", "slowstart")
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Values) != 2 || d.Name != "policy" {
		t.Fatalf("unexpected dimension %+v", d)
	}
}

// TestSweepValidation covers grid-declaration errors.
func TestSweepValidation(t *testing.T) {
	base := traceBase(42)
	cases := []sweep.Sweep{
		{Base: base}, // no dimensions
		{Base: base, Dimensions: []sweep.Dimension{{Name: "", Values: []sweep.Value{{Label: "x", Apply: noop}}}}},                             // unnamed
		{Base: base, Dimensions: []sweep.Dimension{{Name: "d"}}},                                                                              // no values
		{Base: base, Dimensions: []sweep.Dimension{sweep.Gamma(1), sweep.Gamma(2)}},                                                           // duplicate name
		{Base: base, Dimensions: []sweep.Dimension{{Name: "d", Values: []sweep.Value{{Label: "x", Apply: noop}, {Label: "x", Apply: noop}}}}}, // duplicate label
		{Base: base, Dimensions: []sweep.Dimension{{Name: "d", Values: []sweep.Value{{Label: "x"}}}}},                                         // nil mutator
		{Base: base, Dimensions: []sweep.Dimension{sweep.Gamma(1)}, Sample: -1},                                                               // negative sample
	}
	for i, sw := range cases {
		if _, err := sw.Points(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func noop(*scenario.Scenario) error { return nil }

// TestEngineFailedPoint checks that a point whose scenario fails
// validation aborts the sweep with its coordinates in the error, while
// earlier points still reached the sinks.
func TestEngineFailedPoint(t *testing.T) {
	sw := sweep.Sweep{
		Base:       popBase(scenario.Arm{Name: "circuitstart"}),
		Dimensions: []sweep.Dimension{sweep.Circuits(1, 0)}, // 0 circuits is invalid
	}
	tbl, err := sweep.Engine{Workers: 1}.Run(sw)
	if err == nil || !strings.Contains(err.Error(), "point 1") {
		t.Fatalf("expected point-1 failure, got %v", err)
	}
	if len(tbl.Rows) != 1 || tbl.Rows[0].Point != 0 {
		t.Fatalf("table rows = %+v, want the one completed point", tbl.Rows)
	}
}

// TestEngineResume checks that Resume re-runs exactly the grid suffix.
func TestEngineResume(t *testing.T) {
	sw := sweep.Sweep{
		Base:       popBase(scenario.Arm{Name: "circuitstart"}),
		Dimensions: []sweep.Dimension{sweep.Gamma(2, 4, 8)},
	}
	full, err := sweep.Engine{Workers: 2}.Run(sw)
	if err != nil {
		t.Fatal(err)
	}
	part, err := sweep.Engine{Workers: 2, Resume: 1}.Run(sw)
	if err != nil {
		t.Fatal(err)
	}
	if len(part.Rows) != len(full.Rows)-1 {
		t.Fatalf("resumed rows = %d, want %d", len(part.Rows), len(full.Rows)-1)
	}
	for i, r := range part.Rows {
		want := full.Rows[i+1]
		if r.Point != want.Point || r.Arm != want.Arm || r.ArmPoint != want.ArmPoint ||
			strings.Join(r.Coords, "|") != strings.Join(want.Coords, "|") {
			t.Fatalf("resumed row %d = %+v, want %+v", i, r, want)
		}
	}
}

// TestCloneIndependence checks the mutation hook the engine relies on:
// mutating a cloned scenario leaves the base untouched.
func TestCloneIndependence(t *testing.T) {
	pop := workload.DefaultRelayParams(8)
	fabric, err := workload.GenerateBackbone(workload.DefaultBackboneParams(8, 2))
	if err != nil {
		t.Fatal(err)
	}
	base := scenario.Scenario{
		Seed:     1,
		Topology: scenario.Topology{Population: &pop, Fabric: &fabric},
		Circuits: scenario.CircuitSet{Count: 2, TransferSize: units.Kilobyte},
		Arms:     []scenario.Arm{{Name: "a"}},
		Horizon:  sim.Second,
		Events:   []scenario.LinkEvent{{At: 1, TrunkA: "core-00", TrunkB: "core-01", Rate: units.Mbps(1)}},
	}
	cl := base.Clone()
	cl.Arms[0].Transport.Gamma = 9
	cl.Topology.Population.N = 99
	cl.Topology.Fabric.Trunks[0].Config.Rate = units.Mbps(1)
	cl.Events[0].Rate = units.Mbps(2)
	if base.Arms[0].Transport.Gamma == 9 {
		t.Error("clone aliases Arms")
	}
	if base.Topology.Population.N == 99 {
		t.Error("clone aliases Population")
	}
	if base.Topology.Fabric.Trunks[0].Config.Rate == units.Mbps(1) {
		t.Error("clone aliases Fabric trunks")
	}
	if base.Events[0].Rate == units.Mbps(2) {
		t.Error("clone aliases Events")
	}
}
