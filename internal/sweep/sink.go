package sweep

import (
	"fmt"
	"io"
	"sort"

	"circuitstart/internal/traceio"
)

// Meta describes a starting sweep to its sinks.
type Meta struct {
	// Name is the sweep's label.
	Name string
	// Dimensions are the axis names, in declaration order — the
	// coordinate columns of every row.
	Dimensions []string
	// GridSize is the full cross-product size.
	GridSize int
	// Points is how many points this run will execute (less than
	// GridSize under sampling or resumption).
	Points int
}

// Sink consumes a sweep's results as a stream: Begin once with the
// grid metadata, Point once per completed grid point in grid order,
// Flush once at the end (also on a failed sweep, with the points that
// completed). Sinks run on a single goroutine and never concurrently.
type Sink interface {
	Begin(meta Meta) error
	Point(pr *PointResult) error
	Flush() error
}

// metricColumns is the fixed per-arm column schema shared by the CSV
// and JSONL sinks (and mirrored by ArmPoint's fields).
var metricColumns = []string{
	"n", "incomplete",
	"ttlb_mean_s", "ttlb_min_s", "ttlb_p25_s", "ttlb_p50_s", "ttlb_p75_s", "ttlb_p90_s", "ttlb_p99_s", "ttlb_max_s",
	"exit_cwnd", "exit_time_s", "restarts",
	"unknown_dst", "unroutable", "trunk_drops", "mean_train",
	"built", "torn_down", "rebuilt", "aborted",
	"jain_ttlb", "adm_rejected", "killed", "sched_drops", "mem_hw_bytes",
	"stalls", "recoveries", "retries", "abandoned", "ttr_p50_s", "availability", "goodput_kbps",
}

// metricCells renders one ArmPoint in metricColumns order.
func metricCells(ap *ArmPoint) []any {
	return []any{
		ap.TTLB.N, ap.Incomplete,
		ap.TTLB.Mean, ap.TTLB.Min, ap.TTLB.P25, ap.TTLB.Median, ap.TTLB.P75, ap.TTLB.P90, ap.TTLB.P99, ap.TTLB.Max,
		ap.ExitCwndMean, ap.ExitTimeMedian, ap.Restarts,
		ap.UnknownDst, ap.Unroutable, ap.TrunkDrops, ap.MeanTrainLen,
		ap.Built, ap.TornDown, ap.Rebuilt, ap.Aborted,
		ap.Jain, ap.AdmissionRejected, ap.Killed, ap.SchedDrops, ap.MemHighWater,
		ap.Stalls, ap.Recoveries, ap.Retries, ap.Abandoned, ap.TTRP50, ap.Availability, ap.GoodputKBps,
	}
}

// CSVSink streams one row per (point, arm): the point's grid index,
// one coordinate column per dimension, the arm label, then the fixed
// metric columns.
type CSVSink struct {
	w      io.Writer
	cs     *traceio.CSVStream
	resume bool
}

// NewCSVSink returns a sink writing CSV to w.
func NewCSVSink(w io.Writer) *CSVSink { return &CSVSink{w: w} }

// NewCSVAppendSink returns a sink that writes no header row — for
// appending a resumed sweep's remaining rows to a file that already
// holds the completed prefix (open the file with O_APPEND).
func NewCSVAppendSink(w io.Writer) *CSVSink { return &CSVSink{w: w, resume: true} }

// Begin implements Sink: writes the header row (unless resuming).
func (s *CSVSink) Begin(meta Meta) error {
	header := append([]string{"point"}, meta.Dimensions...)
	header = append(header, "arm")
	header = append(header, metricColumns...)
	var err error
	if s.resume {
		s.cs, err = traceio.NewCSVStreamNoHeader(s.w, len(header))
	} else {
		s.cs, err = traceio.NewCSVStream(s.w, header...)
	}
	return err
}

// Point implements Sink.
func (s *CSVSink) Point(pr *PointResult) error {
	for i := range pr.Arms {
		cells := make([]any, 0, 2+len(pr.Point.Coords)+len(metricColumns))
		cells = append(cells, pr.Point.Index)
		for _, c := range pr.Point.Coords {
			cells = append(cells, c)
		}
		cells = append(cells, pr.Arms[i].Arm)
		cells = append(cells, metricCells(&pr.Arms[i])...)
		if err := s.cs.Writef(cells...); err != nil {
			return err
		}
	}
	return nil
}

// Flush implements Sink. CSVStream writes through, so there is nothing
// buffered to release.
func (s *CSVSink) Flush() error { return nil }

// jsonlHeader is the first line of a JSONL sweep file.
type jsonlHeader struct {
	Schema     string   `json:"schema"`
	Name       string   `json:"name,omitempty"`
	Dimensions []string `json:"dimensions"`
	GridSize   int      `json:"grid_size"`
	Points     int      `json:"points"`
}

// JSONLRow is one (point, arm) record of a JSONL sweep file.
type JSONLRow struct {
	Point      int               `json:"point"`
	Coords     map[string]string `json:"coords"`
	Arm        string            `json:"arm"`
	N          int               `json:"n"`
	Incomplete int               `json:"incomplete"`
	TTLBMean   float64           `json:"ttlb_mean_s"`
	TTLBMin    float64           `json:"ttlb_min_s"`
	TTLBP25    float64           `json:"ttlb_p25_s"`
	TTLBP50    float64           `json:"ttlb_p50_s"`
	TTLBP75    float64           `json:"ttlb_p75_s"`
	TTLBP90    float64           `json:"ttlb_p90_s"`
	TTLBP99    float64           `json:"ttlb_p99_s"`
	TTLBMax    float64           `json:"ttlb_max_s"`
	ExitCwnd   float64           `json:"exit_cwnd"`
	ExitTime   float64           `json:"exit_time_s"`
	Restarts   uint64            `json:"restarts"`
	UnknownDst uint64            `json:"unknown_dst"`
	Unroutable uint64            `json:"unroutable"`
	TrunkDrops uint64            `json:"trunk_drops"`
	MeanTrain  float64           `json:"mean_train"`
	Built      int               `json:"built"`
	TornDown   int               `json:"torn_down"`
	Rebuilt    int               `json:"rebuilt"`
	Aborted    int               `json:"aborted"`
	Jain       float64           `json:"jain_ttlb"`
	AdmRejects uint64            `json:"adm_rejected"`
	Killed     uint64            `json:"killed"`
	SchedDrops uint64            `json:"sched_drops"`
	MemHW      int64             `json:"mem_hw_bytes"`
	Stalls     int               `json:"stalls"`
	Recoveries int               `json:"recoveries"`
	Retries    int               `json:"retries"`
	Abandoned  int               `json:"abandoned"`
	TTRP50     float64           `json:"ttr_p50_s"`
	Avail      float64           `json:"availability"`
	Goodput    float64           `json:"goodput_kbps"`
}

// JSONLSink streams a metadata header line followed by one JSON line
// per (point, arm).
type JSONLSink struct {
	w      io.Writer
	js     *traceio.JSONLStream
	meta   Meta
	resume bool
}

// NewJSONLSink returns a sink writing JSON lines to w.
func NewJSONLSink(w io.Writer) *JSONLSink { return &JSONLSink{w: w} }

// NewJSONLAppendSink returns a sink that writes no metadata header
// line — for appending a resumed sweep's remaining rows to a file
// that already holds the completed prefix.
func NewJSONLAppendSink(w io.Writer) *JSONLSink { return &JSONLSink{w: w, resume: true} }

// Begin implements Sink: writes the header line (unless resuming).
func (s *JSONLSink) Begin(meta Meta) error {
	s.js = traceio.NewJSONLStream(s.w)
	s.meta = meta
	if s.resume {
		return nil
	}
	return s.js.Write(jsonlHeader{
		Schema:     "circuitsim-sweep/v1",
		Name:       meta.Name,
		Dimensions: meta.Dimensions,
		GridSize:   meta.GridSize,
		Points:     meta.Points,
	})
}

// Point implements Sink.
func (s *JSONLSink) Point(pr *PointResult) error {
	coords := make(map[string]string, len(s.meta.Dimensions))
	for i, d := range s.meta.Dimensions {
		coords[d] = pr.Point.Coords[i]
	}
	for i := range pr.Arms {
		ap := &pr.Arms[i]
		row := JSONLRow{
			Point: pr.Point.Index, Coords: coords, Arm: ap.Arm,
			N: ap.TTLB.N, Incomplete: ap.Incomplete,
			TTLBMean: ap.TTLB.Mean, TTLBMin: ap.TTLB.Min,
			TTLBP25: ap.TTLB.P25, TTLBP50: ap.TTLB.Median, TTLBP75: ap.TTLB.P75,
			TTLBP90: ap.TTLB.P90, TTLBP99: ap.TTLB.P99, TTLBMax: ap.TTLB.Max,
			ExitCwnd: ap.ExitCwndMean, ExitTime: ap.ExitTimeMedian, Restarts: ap.Restarts,
			UnknownDst: ap.UnknownDst, Unroutable: ap.Unroutable, TrunkDrops: ap.TrunkDrops,
			MeanTrain: ap.MeanTrainLen,
			Built:     ap.Built, TornDown: ap.TornDown, Rebuilt: ap.Rebuilt, Aborted: ap.Aborted,
			Jain: ap.Jain, AdmRejects: ap.AdmissionRejected, Killed: ap.Killed,
			SchedDrops: ap.SchedDrops, MemHW: ap.MemHighWater,
			Stalls: ap.Stalls, Recoveries: ap.Recoveries, Retries: ap.Retries,
			Abandoned: ap.Abandoned, TTRP50: ap.TTRP50, Avail: ap.Availability,
			Goodput: ap.GoodputKBps,
		}
		if err := s.js.Write(row); err != nil {
			return err
		}
	}
	return nil
}

// Flush implements Sink.
func (s *JSONLSink) Flush() error { return nil }

// Row is one (point, arm) record retained by the in-memory Table.
type Row struct {
	// Point is the grid index; Coords are the dimension value labels.
	Point  int
	Coords []string
	ArmPoint
}

// Table is the in-memory sink: it retains every (point, arm) record
// (dropping the full per-point Results, so memory stays proportional
// to the grid, not the workload) and answers the summary queries the
// CLI and examples print — best arm per point and per-dimension
// marginals.
type Table struct {
	// Meta echoes the sweep the rows came from.
	Meta Meta
	// Rows holds one record per (point, arm), in grid order.
	Rows []Row
}

// NewTable returns an empty table; Engine.Run populates and returns it.
func NewTable() *Table { return &Table{} }

// Begin implements Sink.
func (t *Table) Begin(meta Meta) error { t.Meta = meta; return nil }

// Point implements Sink.
func (t *Table) Point(pr *PointResult) error {
	for i := range pr.Arms {
		t.Rows = append(t.Rows, Row{Point: pr.Point.Index, Coords: pr.Point.Coords, ArmPoint: pr.Arms[i]})
	}
	return nil
}

// Flush implements Sink.
func (t *Table) Flush() error { return nil }

// Best names the winning arm at one grid point.
type Best struct {
	Point  int
	Coords []string
	// Arm is the arm with the lowest median TTLB among arms that
	// completed at least one transfer ("" when none did).
	Arm string
	// Median is the winning arm's median TTLB in seconds.
	Median float64
}

// BestArms returns the winning arm per grid point, in grid order.
func (t *Table) BestArms() []Best {
	var out []Best
	i := 0
	for i < len(t.Rows) {
		j := i
		best := Best{Point: t.Rows[i].Point, Coords: t.Rows[i].Coords}
		for ; j < len(t.Rows) && t.Rows[j].Point == t.Rows[i].Point; j++ {
			r := &t.Rows[j]
			if r.TTLB.N == 0 {
				continue
			}
			if best.Arm == "" || r.TTLB.Median < best.Median {
				best.Arm, best.Median = r.Arm, r.TTLB.Median
			}
		}
		out = append(out, best)
		i = j
	}
	return out
}

// MarginalRow aggregates one (dimension value, arm) pair across every
// grid point holding that value.
type MarginalRow struct {
	// Value is the dimension value label; Arm the arm name.
	Value string
	Arm   string
	// Points counts grid points with this value where the arm
	// completed at least one transfer.
	Points int
	// MeanMedian averages the arm's per-point median TTLB (seconds)
	// over those points — the marginal response to this value.
	MeanMedian float64
	// Incomplete totals unfinished transfers across the points.
	Incomplete int
	// Wins counts points with this value where the arm was the best.
	Wins int
}

// Marginal collapses the grid onto one dimension: for every value of
// the named axis, the per-arm marginal aggregates across all points
// holding that value. Rows are ordered by first appearance of the
// value, then arm.
func (t *Table) Marginal(dim string) ([]MarginalRow, error) {
	di := -1
	for i, d := range t.Meta.Dimensions {
		if d == dim {
			di = i
		}
	}
	if di < 0 {
		return nil, fmt.Errorf("sweep: no dimension %q (have %v)", dim, t.Meta.Dimensions)
	}
	wins := make(map[[2]string]int)
	winners := t.BestArms()
	for _, b := range winners {
		if b.Arm != "" {
			wins[[2]string{b.Coords[di], b.Arm}]++
		}
	}
	type agg struct {
		order      int
		points     int
		sumMedian  float64
		incomplete int
	}
	aggs := make(map[[2]string]*agg)
	var keys [][2]string
	for _, r := range t.Rows {
		key := [2]string{r.Coords[di], r.Arm}
		a := aggs[key]
		if a == nil {
			a = &agg{order: len(keys)}
			aggs[key] = a
			keys = append(keys, key)
		}
		a.incomplete += r.Incomplete
		if r.TTLB.N > 0 {
			a.points++
			a.sumMedian += r.TTLB.Median
		}
	}
	sort.SliceStable(keys, func(i, j int) bool { return aggs[keys[i]].order < aggs[keys[j]].order })
	out := make([]MarginalRow, len(keys))
	for i, key := range keys {
		a := aggs[key]
		m := MarginalRow{Value: key[0], Arm: key[1], Points: a.points, Incomplete: a.incomplete, Wins: wins[key]}
		if a.points > 0 {
			m.MeanMedian = a.sumMedian / float64(a.points)
		}
		out[i] = m
	}
	return out, nil
}

// WriteText renders the full (point, arm) table with aligned columns —
// a compact subset of the CSV schema for terminal reading.
func (t *Table) WriteText(w io.Writer) error {
	cols := append([]string{"point"}, t.Meta.Dimensions...)
	cols = append(cols, "arm", "n", "incomplete", "ttlb_p50_s", "ttlb_p90_s", "exit_cwnd", "exit_time_s", "drops")
	tbl := traceio.NewTable(cols...)
	for _, r := range t.Rows {
		cells := make([]any, 0, len(cols))
		cells = append(cells, r.Point)
		for _, c := range r.Coords {
			cells = append(cells, c)
		}
		drops := r.UnknownDst + r.Unroutable + r.TrunkDrops
		cells = append(cells, r.Arm, r.TTLB.N, r.Incomplete, r.TTLB.Median, r.TTLB.P90, r.ExitCwndMean, r.ExitTimeMedian, drops)
		tbl.AddRowf(cells...)
	}
	return tbl.WriteText(w)
}

// WriteSummary renders the canonical sweep summary block — the header
// line, the full (point, arm) table and the per-dimension marginals.
// `circuitsim sweep` prints exactly this to stdout and the serve
// daemon's text summary endpoint returns exactly this body, so a remote
// client's output is byte-identical to a local batch run's.
func (t *Table) WriteSummary(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "sweep %s: %d points over %d dimensions (full grid %d)\n",
		t.Meta.Name, t.Meta.Points, len(t.Meta.Dimensions), t.Meta.GridSize); err != nil {
		return err
	}
	if err := t.WriteText(w); err != nil {
		return err
	}
	return t.WriteMarginals(w)
}

// WriteMarginals renders one aligned marginal table per dimension.
func (t *Table) WriteMarginals(w io.Writer) error {
	for _, dim := range t.Meta.Dimensions {
		rows, err := t.Marginal(dim)
		if err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "marginal over %s:\n", dim); err != nil {
			return err
		}
		tbl := traceio.NewTable(dim, "arm", "points", "mean_median_s", "incomplete", "wins")
		for _, m := range rows {
			tbl.AddRowf(m.Value, m.Arm, m.Points, m.MeanMedian, m.Incomplete, m.Wins)
		}
		if err := tbl.WriteText(w); err != nil {
			return err
		}
	}
	return nil
}
