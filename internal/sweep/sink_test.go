package sweep_test

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strconv"
	"strings"
	"testing"

	"circuitstart/internal/core"
	"circuitstart/internal/scenario"
	"circuitstart/internal/sweep"
	"circuitstart/internal/units"
)

// runSmallGrid executes a 2×2 grid with two arms once, streaming into
// both stock sinks, and returns everything the round-trip tests need.
func runSmallGrid(t *testing.T) (*sweep.Table, string, string) {
	t.Helper()
	var cb, jb bytes.Buffer
	sw := sweep.Sweep{
		Name: "roundtrip",
		Base: popBase(
			scenario.Arm{Name: "circuitstart"},
			scenario.Arm{Name: "backtap", Transport: core.TransportOptions{Policy: "backtap"}},
		),
		Dimensions: []sweep.Dimension{
			sweep.Gamma(2, 4),
			sweep.TransferSizes(30*units.Kilobyte, 60*units.Kilobyte),
		},
	}
	tbl, err := sweep.Engine{Workers: 4}.Run(sw, sweep.NewCSVSink(&cb), sweep.NewJSONLSink(&jb))
	if err != nil {
		t.Fatal(err)
	}
	return tbl, cb.String(), jb.String()
}

// TestCSVRoundTrip parses the CSV sink's output back and checks it
// against the in-memory table record for record.
func TestCSVRoundTrip(t *testing.T) {
	tbl, csvOut, _ := runSmallGrid(t)
	recs, err := csv.NewReader(strings.NewReader(csvOut)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	wantHeader := []string{"point", "gamma", "size", "arm", "n", "incomplete",
		"ttlb_mean_s", "ttlb_min_s", "ttlb_p25_s", "ttlb_p50_s", "ttlb_p75_s", "ttlb_p90_s", "ttlb_p99_s", "ttlb_max_s",
		"exit_cwnd", "exit_time_s", "restarts", "unknown_dst", "unroutable", "trunk_drops", "mean_train",
		"built", "torn_down", "rebuilt", "aborted",
		"jain_ttlb", "adm_rejected", "killed", "sched_drops", "mem_hw_bytes",
		"stalls", "recoveries", "retries", "abandoned", "ttr_p50_s", "availability", "goodput_kbps"}
	if strings.Join(recs[0], "|") != strings.Join(wantHeader, "|") {
		t.Fatalf("header = %v\nwant %v", recs[0], wantHeader)
	}
	rows := recs[1:]
	if len(rows) != len(tbl.Rows) {
		t.Fatalf("%d CSV rows, table has %d", len(rows), len(tbl.Rows))
	}
	for i, rec := range rows {
		want := tbl.Rows[i]
		if got, _ := strconv.Atoi(rec[0]); got != want.Point {
			t.Errorf("row %d point = %s, want %d", i, rec[0], want.Point)
		}
		if rec[1] != want.Coords[0] || rec[2] != want.Coords[1] {
			t.Errorf("row %d coords = %v, want %v", i, rec[1:3], want.Coords)
		}
		if rec[3] != want.Arm {
			t.Errorf("row %d arm = %s, want %s", i, rec[3], want.Arm)
		}
		if got, _ := strconv.Atoi(rec[4]); got != want.TTLB.N {
			t.Errorf("row %d n = %s, want %d", i, rec[4], want.TTLB.N)
		}
		if got, err := strconv.ParseFloat(rec[9], 64); err != nil || !close8(got, want.TTLB.Median) {
			t.Errorf("row %d ttlb_p50 = %s, want %v", i, rec[9], want.TTLB.Median)
		}
		if got, err := strconv.ParseFloat(rec[14], 64); err != nil || !close8(got, want.ExitCwndMean) {
			t.Errorf("row %d exit_cwnd = %s, want %v", i, rec[14], want.ExitCwndMean)
		}
	}
	// A sweep of completed transfers must have produced data rows with
	// actual samples, or the round trip proves nothing.
	if tbl.Rows[0].TTLB.N == 0 {
		t.Fatal("no completed transfers in round-trip grid")
	}
}

// close8 compares a float that passed through the 8-significant-digit
// CSV rendering against its source.
func close8(got, want float64) bool {
	if want == 0 {
		return got == 0
	}
	diff := got - want
	if diff < 0 {
		diff = -diff
	}
	scale := want
	if scale < 0 {
		scale = -scale
	}
	return diff/scale < 1e-7
}

// TestJSONLRoundTrip parses the JSONL sink's output back: the header
// line, then one exact record per (point, arm).
func TestJSONLRoundTrip(t *testing.T) {
	tbl, _, jsonlOut := runSmallGrid(t)
	lines := strings.Split(strings.TrimSpace(jsonlOut), "\n")
	if len(lines) != 1+len(tbl.Rows) {
		t.Fatalf("%d JSONL lines, want header + %d", len(lines), len(tbl.Rows))
	}
	var header struct {
		Schema     string   `json:"schema"`
		Name       string   `json:"name"`
		Dimensions []string `json:"dimensions"`
		GridSize   int      `json:"grid_size"`
		Points     int      `json:"points"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &header); err != nil {
		t.Fatal(err)
	}
	if header.Schema != "circuitsim-sweep/v1" || header.Name != "roundtrip" ||
		header.GridSize != 4 || header.Points != 4 ||
		strings.Join(header.Dimensions, ",") != "gamma,size" {
		t.Fatalf("header = %+v", header)
	}
	for i, line := range lines[1:] {
		var row sweep.JSONLRow
		if err := json.Unmarshal([]byte(line), &row); err != nil {
			t.Fatalf("line %d: %v", i+1, err)
		}
		want := tbl.Rows[i]
		if row.Point != want.Point || row.Arm != want.Arm ||
			row.Coords["gamma"] != want.Coords[0] || row.Coords["size"] != want.Coords[1] {
			t.Errorf("line %d = %+v, want point %d arm %s coords %v", i+1, row, want.Point, want.Arm, want.Coords)
		}
		if row.N != want.TTLB.N || row.TTLBP50 != want.TTLB.Median ||
			row.ExitCwnd != want.ExitCwndMean || row.TTLBMax != want.TTLB.Max {
			t.Errorf("line %d metrics = %+v, want %+v", i+1, row, want.ArmPoint)
		}
	}
}

// TestTableSummaries covers the best-arm and marginal queries on a grid
// where CircuitStart should win everywhere.
func TestTableSummaries(t *testing.T) {
	tbl, _, _ := runSmallGrid(t)
	best := tbl.BestArms()
	if len(best) != 4 {
		t.Fatalf("%d best arms, want 4", len(best))
	}
	for _, b := range best {
		if b.Arm == "" {
			t.Errorf("point %d has no winner", b.Point)
		}
	}
	marg, err := tbl.Marginal("gamma")
	if err != nil {
		t.Fatal(err)
	}
	// 2 gamma values × 2 arms.
	if len(marg) != 4 {
		t.Fatalf("%d marginal rows, want 4", len(marg))
	}
	wins := 0
	for _, m := range marg {
		if m.Points == 0 || m.MeanMedian <= 0 {
			t.Errorf("marginal %+v has no data", m)
		}
		wins += m.Wins
	}
	if wins != 4 {
		t.Errorf("marginal wins total %d, want 4 (one per point)", wins)
	}
	if _, err := tbl.Marginal("bogus"); err == nil {
		t.Error("unknown dimension accepted")
	}
	var text, margText bytes.Buffer
	if err := tbl.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(text.String(), "\n"); got != 1+len(tbl.Rows) {
		t.Errorf("WriteText rendered %d lines, want %d", got, 1+len(tbl.Rows))
	}
	if err := tbl.WriteMarginals(&margText); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(margText.String(), "marginal over gamma:") ||
		!strings.Contains(margText.String(), "marginal over size:") {
		t.Errorf("marginals missing a dimension:\n%s", margText.String())
	}
}
