package sweep_test

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"circuitstart/internal/scenario"
	"circuitstart/internal/sweep"
)

// TestEngineLookupMatchesResume pins the generalization the serve
// daemon's cache rests on: replaying completed points through the
// hash-keyed Lookup hook produces byte-identical sink output to a full
// run, and the points it does compute are exactly the ones index-prefix
// Resume would compute.
func TestEngineLookupMatchesResume(t *testing.T) {
	sw := sweep.Sweep{
		Name:       "lookup",
		Base:       popBase(scenario.Arm{Name: "circuitstart"}),
		Dimensions: []sweep.Dimension{sweep.Gamma(2, 4, 8)},
	}

	// Full run: capture every point's rows and the reference CSV bytes.
	var fullCSV bytes.Buffer
	cap := &captureSink{}
	full, err := sweep.Engine{Workers: 2}.Run(sw, cap, sweep.NewCSVSink(&fullCSV))
	if err != nil {
		t.Fatal(err)
	}

	// Pretend the first two points are cached, keyed by their coords —
	// the same identity PointKey hashes, minus the hashing.
	const cachedPrefix = 2
	cache := map[string][]sweep.ArmPoint{}
	for _, pr := range cap.results[:cachedPrefix] {
		cache[strings.Join(pr.Point.Coords, "|")] = pr.Arms
	}
	var computed []int
	var replayCSV bytes.Buffer
	replay, err := sweep.Engine{
		Workers: 2,
		Lookup: func(pt sweep.Point) ([]sweep.ArmPoint, bool) {
			arms, ok := cache[strings.Join(pt.Coords, "|")]
			return arms, ok
		},
	}.Run(sw, sweep.NewCSVSink(&replayCSV), pointIndexSink{computed: &computed})
	if err != nil {
		t.Fatal(err)
	}

	if replayCSV.String() != fullCSV.String() {
		t.Errorf("lookup replay CSV differs from the full run:\n--- replay ---\n%s--- full ---\n%s",
			replayCSV.String(), fullCSV.String())
	}
	if len(replay.Rows) != len(full.Rows) {
		t.Errorf("replay table has %d rows, want %d", len(replay.Rows), len(full.Rows))
	}

	// The computed set must equal what Resume(cachedPrefix) computes.
	resumed, err := sweep.Engine{Workers: 2, Resume: cachedPrefix}.Run(sw)
	if err != nil {
		t.Fatal(err)
	}
	wantComputed := map[int]bool{}
	for _, r := range resumed.Rows {
		wantComputed[r.Point] = true
	}
	if len(computed) != len(wantComputed) {
		t.Fatalf("lookup run computed points %v; index-prefix resume computed %v", computed, wantComputed)
	}
	for _, idx := range computed {
		if !wantComputed[idx] {
			t.Errorf("lookup run computed point %d, which resume skipped", idx)
		}
	}
}

// pointIndexSink records which emitted points carry a full Result —
// i.e. were actually computed rather than replayed from Lookup.
type pointIndexSink struct{ computed *[]int }

func (s pointIndexSink) Begin(sweep.Meta) error { return nil }
func (s pointIndexSink) Point(pr *sweep.PointResult) error {
	if pr.Result != nil {
		*s.computed = append(*s.computed, pr.Point.Index)
	}
	return nil
}
func (s pointIndexSink) Flush() error { return nil }

// TestEngineStop checks the cancellation hook: a sweep whose Stop
// predicate trips returns ErrStopped, and the rows it emitted before
// stopping are a valid grid-order prefix.
func TestEngineStop(t *testing.T) {
	sw := sweep.Sweep{
		Base:       popBase(scenario.Arm{Name: "circuitstart"}),
		Dimensions: []sweep.Dimension{sweep.Gamma(2, 4, 8)},
	}
	_, err := sweep.Engine{Workers: 1, Stop: func() bool { return true }}.Run(sw)
	if !errors.Is(err, sweep.ErrStopped) {
		t.Fatalf("err = %v, want ErrStopped", err)
	}

	// A stop that trips after the first point still emits a prefix.
	full, err := sweep.Engine{Workers: 1}.Run(sw)
	if err != nil {
		t.Fatal(err)
	}
	var n int
	tbl, err := sweep.Engine{Workers: 1, Stop: func() bool { n++; return n > 1 }}.Run(sw)
	if !errors.Is(err, sweep.ErrStopped) {
		t.Fatalf("err = %v, want ErrStopped", err)
	}
	if len(tbl.Rows) >= len(full.Rows) {
		t.Fatalf("stopped run emitted %d rows, full run %d — stop had no effect", len(tbl.Rows), len(full.Rows))
	}
	for i, r := range tbl.Rows {
		want := full.Rows[i]
		if r.Point != want.Point || r.ArmPoint != want.ArmPoint {
			t.Fatalf("stopped run row %d = %+v, want the full run's prefix row %+v", i, r, want)
		}
	}
}
