package sweep

import (
	"circuitstart/internal/metrics"
	"circuitstart/internal/scenario"
)

// ArmPoint is one arm's aggregate at one grid point — the compact,
// fixed-schema record the CSV/JSONL sinks stream (quantiles over the
// arm's pooled TTLB distribution, startup-exit aggregates, and the
// fabric/churn counters that catch silently degraded points).
type ArmPoint struct {
	// Arm is the arm's label within the point's scenario.
	Arm string
	// TTLB summarizes the completed transfers' times-to-last-byte in
	// seconds (zero-valued when no transfer completed).
	TTLB metrics.Summary
	// Incomplete counts transfers unfinished at the horizon.
	Incomplete int
	// ExitCwndMean is the mean startup-exit window in cells across the
	// arm's circuits — the paper's headline per-circuit number.
	ExitCwndMean float64
	// ExitTimeMedian is the median startup-exit instant in seconds
	// (zero when no circuit exited startup).
	ExitTimeMedian float64
	// Restarts totals the re-probes the arm's sources performed.
	Restarts uint64
	// UnknownDst and Unroutable pool the arm's fabric drop counters.
	UnknownDst, Unroutable uint64
	// TrunkDrops totals tail drops across the arm's backbone trunks.
	TrunkDrops uint64
	// MeanTrainLen is the mean cells-per-train across the arm's backbone
	// trunks (cells delivered / trains delivered). Exactly 1 when the
	// trial ran untrained, 0 on a star (no trunk accounting).
	MeanTrainLen float64
	// Built, TornDown, Rebuilt and Aborted pool the arm's
	// circuit-lifecycle counters (zero without churn).
	Built, TornDown, Rebuilt, Aborted int
	// Jain is Jain's fairness index over the arm's pooled per-circuit
	// TTLB samples (0 when no transfer completed).
	Jain float64
	// AdmissionRejected, Killed and SchedDrops pool the arm's
	// resource-pressure counters: circuits refused at admission,
	// circuits evicted by relay resource managers, and frames dropped
	// by installed schedulers (zero without limits).
	AdmissionRejected, Killed, SchedDrops uint64
	// MemHighWater is the largest per-relay held-cell memory observed
	// across the arm's trials, in bytes.
	MemHighWater int64
	// Stalls, Recoveries, Retries and Abandoned pool the arm's
	// fault-recovery counters (zero without Faults.Recovery).
	Stalls, Recoveries, Retries, Abandoned int
	// TTRP50 is the median time-to-recovery in seconds (0 when no stall
	// recovered).
	TTRP50 float64
	// Availability is the fraction of download-active time the arm's
	// transports were not stalled (1 without recovery enabled).
	Availability float64
	// GoodputKBps is delivered kilobits per download-active second under
	// fault (0 without recovery enabled).
	GoodputKBps float64
}

// PointResult is one executed grid point: the point itself, its
// per-arm aggregates, and the full scenario Result for custom sinks
// that need more than the compact schema (the stock sinks and the
// in-memory Table do not retain it, so streaming sweeps stay bounded).
type PointResult struct {
	Point Point
	Arms  []ArmPoint
	// Result is the full aggregate the Runner produced. Sinks must not
	// mutate it.
	Result *scenario.Result
}

// armPoints compresses a scenario Result into the per-arm records.
func armPoints(res *scenario.Result) []ArmPoint {
	out := make([]ArmPoint, len(res.Arms))
	for i := range res.Arms {
		a := &res.Arms[i]
		ap := ArmPoint{
			Arm:        a.Name,
			TTLB:       a.TTLB.Summarize(),
			Incomplete: a.Incomplete,
			UnknownDst: a.Net.UnknownDst,
			Unroutable: a.Net.Unroutable,
			Built:      a.Churn.Built,
			TornDown:   a.Churn.TornDown,
			Rebuilt:    a.Churn.Rebuilt,
			Aborted:    a.Churn.Aborted,

			Jain:              a.JainTTLB(),
			AdmissionRejected: a.Net.Resource.Rejected,
			Killed:            a.Net.Resource.Killed,
			SchedDrops:        a.Net.SchedDrops,
			MemHighWater:      int64(a.Net.Resource.MemHighWater),

			Stalls:       a.Resilience.Stalls,
			Recoveries:   a.Resilience.Recoveries,
			Retries:      a.Resilience.Retries,
			Abandoned:    a.Resilience.Abandoned,
			Availability: a.Resilience.Availability(),
			GoodputKBps:  a.Resilience.Goodput() * 8 / 1000,
		}
		if ttr := a.Resilience.TTR; ttr != nil && ttr.Len() > 0 {
			ap.TTRP50 = ttr.Median()
		}
		var exitSum float64
		exits := metrics.NewDistribution("exit_time")
		for _, o := range a.Circuits {
			exitSum += o.ExitCwnd
			if o.ExitTime > 0 {
				exits.Add(o.ExitTime.Seconds())
			}
			ap.Restarts += o.Restarts
		}
		if len(a.Circuits) > 0 {
			ap.ExitCwndMean = exitSum / float64(len(a.Circuits))
		}
		if exits.Len() > 0 {
			ap.ExitTimeMedian = exits.Median()
		}
		var cells, trains uint64
		for _, ts := range a.Net.Trunks {
			ap.TrunkDrops += ts.Stats.TailDrops
			cells += ts.Stats.CellsDelivered
			trains += ts.Stats.TrainsDelivered
		}
		if trains > 0 {
			ap.MeanTrainLen = float64(cells) / float64(trains)
		}
		out[i] = ap
	}
	return out
}
