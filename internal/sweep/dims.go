package sweep

import (
	"fmt"
	"time"

	"circuitstart/internal/faults"
	"circuitstart/internal/netem"
	relaypkg "circuitstart/internal/relay"
	"circuitstart/internal/resource"
	"circuitstart/internal/scenario"
	"circuitstart/internal/transport"
	"circuitstart/internal/units"
	"circuitstart/internal/workload"
)

// Custom builds a dimension from explicit values — the escape hatch for
// axes the stock constructors below do not cover (e.g. rebuilding the
// whole topology per hop count).
func Custom(name string, values ...Value) Dimension {
	return Dimension{Name: name, Values: values}
}

// Gamma returns a dimension sweeping the start-up exit threshold γ on
// every arm.
func Gamma(gammas ...float64) Dimension {
	d := Dimension{Name: "gamma"}
	for _, g := range gammas {
		g := g
		d.Values = append(d.Values, Value{
			Label: fmt.Sprintf("%g", g),
			Apply: func(sc *scenario.Scenario) error {
				for i := range sc.Arms {
					sc.Arms[i].Transport.Gamma = g
				}
				return nil
			},
		})
	}
	return d
}

// Policies returns a dimension sweeping the start-up policy on every
// arm. Names are validated eagerly via transport.PolicyByName, so a
// typo fails at grid construction, not inside a worker.
func Policies(names ...string) (Dimension, error) {
	d := Dimension{Name: "policy"}
	for _, name := range names {
		name := name
		if _, err := transport.PolicyByName(name, 0); err != nil {
			return Dimension{}, fmt.Errorf("sweep: %w", err)
		}
		d.Values = append(d.Values, Value{
			Label: name,
			Apply: func(sc *scenario.Scenario) error {
				for i := range sc.Arms {
					sc.Arms[i].Transport.Policy = name
				}
				return nil
			},
		})
	}
	return d, nil
}

// Circuits returns a dimension sweeping the concurrent circuit count.
// On explicit topologies the base must declare a single shared path
// (scenario validation enforces the path/count contract).
func Circuits(counts ...int) Dimension {
	d := Dimension{Name: "circuits"}
	for _, n := range counts {
		n := n
		d.Values = append(d.Values, Value{
			Label: fmt.Sprintf("%d", n),
			Apply: func(sc *scenario.Scenario) error {
				sc.Circuits.Count = n
				return nil
			},
		})
	}
	return d
}

// TransferSizes returns a dimension sweeping the per-circuit transfer.
func TransferSizes(sizes ...units.DataSize) Dimension {
	d := Dimension{Name: "size"}
	for _, s := range sizes {
		s := s
		d.Values = append(d.Values, Value{
			Label: s.String(),
			Apply: func(sc *scenario.Scenario) error {
				sc.Circuits.TransferSize = s
				return nil
			},
		})
	}
	return d
}

// Hops returns a dimension sweeping the sampled path length on a
// generated population (explicit topologies fix their paths; rebuild
// those with a Custom dimension instead).
func Hops(counts ...int) Dimension {
	d := Dimension{Name: "hops"}
	for _, n := range counts {
		n := n
		d.Values = append(d.Values, Value{
			Label: fmt.Sprintf("%d", n),
			Apply: func(sc *scenario.Scenario) error {
				if sc.Topology.Population == nil {
					return fmt.Errorf("hops axis needs a generated population topology")
				}
				sc.Circuits.Hops = n
				return nil
			},
		})
	}
	return d
}

// PopulationSizes returns a dimension sweeping the generated relay
// population size.
func PopulationSizes(ns ...int) Dimension {
	d := Dimension{Name: "relays"}
	for _, n := range ns {
		n := n
		d.Values = append(d.Values, Value{
			Label: fmt.Sprintf("%d", n),
			Apply: func(sc *scenario.Scenario) error {
				if sc.Topology.Population == nil {
					return fmt.Errorf("population-size axis needs a generated population topology")
				}
				sc.Topology.Population.N = n
				return nil
			},
		})
	}
	return d
}

// PopulationBandwidths returns a dimension sweeping the generated
// population's median relay bandwidth.
func PopulationBandwidths(rates ...units.DataRate) Dimension {
	d := Dimension{Name: "median_bw"}
	for _, r := range rates {
		r := r
		d.Values = append(d.Values, Value{
			Label: r.String(),
			Apply: func(sc *scenario.Scenario) error {
				if sc.Topology.Population == nil {
					return fmt.Errorf("median-bandwidth axis needs a generated population topology")
				}
				sc.Topology.Population.BandwidthMedian = r
				return nil
			},
		})
	}
	return d
}

// RelayRates returns a dimension sweeping one explicit relay's access
// rate (both directions) — the bottleneck-bandwidth axis of the trace
// scenarios.
func RelayRates(relay netem.NodeID, rates ...units.DataRate) Dimension {
	d := Dimension{Name: fmt.Sprintf("%s_bw", relay)}
	for _, r := range rates {
		r := r
		d.Values = append(d.Values, Value{
			Label: r.String(),
			Apply: func(sc *scenario.Scenario) error {
				for i := range sc.Topology.Relays {
					if sc.Topology.Relays[i].ID == relay {
						sc.Topology.Relays[i].Access.UpRate = r
						sc.Topology.Relays[i].Access.DownRate = r
						return nil
					}
				}
				return fmt.Errorf("explicit topology has no relay %q", relay)
			},
		})
	}
	return d
}

// TrunkRates returns a dimension sweeping every backbone trunk's rate
// (both directions) on a scenario with a Fabric spec.
func TrunkRates(rates ...units.DataRate) Dimension {
	d := Dimension{Name: "trunk_bw"}
	for _, r := range rates {
		r := r
		d.Values = append(d.Values, Value{
			Label: r.String(),
			Apply: func(sc *scenario.Scenario) error {
				if sc.Topology.Fabric == nil {
					return fmt.Errorf("trunk-rate axis needs a topology with a Fabric spec")
				}
				for i := range sc.Topology.Fabric.Trunks {
					sc.Topology.Fabric.Trunks[i].Config.Rate = r
				}
				return nil
			},
		})
	}
	return d
}

// TrunkDelays returns a dimension sweeping every backbone trunk's
// one-way propagation delay on a scenario with a Fabric spec.
func TrunkDelays(delays ...time.Duration) Dimension {
	d := Dimension{Name: "trunk_delay"}
	for _, dl := range delays {
		dl := dl
		d.Values = append(d.Values, Value{
			Label: dl.String(),
			Apply: func(sc *scenario.Scenario) error {
				if sc.Topology.Fabric == nil {
					return fmt.Errorf("trunk-delay axis needs a topology with a Fabric spec")
				}
				for i := range sc.Topology.Fabric.Trunks {
					sc.Topology.Fabric.Trunks[i].Config.Delay = dl
				}
				return nil
			},
		})
	}
	return d
}

// ChurnRates returns a dimension sweeping the circuit-churn arrival
// rate. The base scenario must bound the process via
// CircuitEvents.Arrivals (scenario validation requires both).
func ChurnRates(rates ...float64) Dimension {
	d := Dimension{Name: "churn_rate"}
	for _, r := range rates {
		r := r
		d.Values = append(d.Values, Value{
			Label: fmt.Sprintf("%g", r),
			Apply: func(sc *scenario.Scenario) error {
				if sc.CircuitEvents.Arrivals <= 0 {
					return fmt.Errorf("churn-rate axis needs CircuitEvents.Arrivals set on the base scenario")
				}
				sc.CircuitEvents.ArrivalRate = r
				return nil
			},
		})
	}
	return d
}

// DimScheduler returns a dimension sweeping the relay circuit-scheduler
// discipline ("fifo" or "ewma") on every arm. Names are validated
// eagerly, so a typo fails at grid construction, not inside a worker.
func DimScheduler(names ...string) (Dimension, error) {
	d := Dimension{Name: "scheduler"}
	for _, name := range names {
		name := name
		if err := (relaypkg.Config{Scheduler: name}).Validate(); err != nil {
			return Dimension{}, fmt.Errorf("sweep: %w", err)
		}
		d.Values = append(d.Values, Value{
			Label: name,
			Apply: func(sc *scenario.Scenario) error {
				for i := range sc.Arms {
					sc.Arms[i].Relay.Scheduler = name
				}
				return nil
			},
		})
	}
	return d, nil
}

// DimRelayCaps returns a dimension sweeping the per-relay resource
// limits on every arm. A zero Limits value is the uncapped baseline;
// labels come from Limits.Label.
func DimRelayCaps(caps ...resource.Limits) Dimension {
	d := Dimension{Name: "relay_caps"}
	for _, l := range caps {
		l := l
		d.Values = append(d.Values, Value{
			Label: l.Label(),
			Apply: func(sc *scenario.Scenario) error {
				for i := range sc.Arms {
					sc.Arms[i].Relay.Limits = l
				}
				return nil
			},
		})
	}
	return d
}

// DimTrainSize returns a dimension sweeping the cell-train coalescing
// cap on every link of the trial. Size ≤ 1 is the byte-identical
// one-event-per-cell baseline, so a sweep over {1, n} directly measures
// what batching does to the simulated outcomes (it should be nothing)
// and to wall-clock runtime (it should be a lot).
func DimTrainSize(sizes ...int) (Dimension, error) {
	d := Dimension{Name: "train"}
	for _, n := range sizes {
		n := n
		if n < 0 {
			return Dimension{}, fmt.Errorf("sweep: negative train size %d", n)
		}
		d.Values = append(d.Values, Value{
			Label: fmt.Sprintf("%d", n),
			Apply: func(sc *scenario.Scenario) error {
				sc.TrainSize = n
				return nil
			},
		})
	}
	return d, nil
}

// DimShards returns a dimension sweeping the trial-internal shard
// count on the conservative-lookahead parallel engine. Count 0 is the
// single-clock engine; every count ≥ 1 is byte-identical to count 1,
// so a sweep over {1, n} measures what sharding does to the simulated
// outcomes (it must be nothing) and to wall-clock runtime. Counts ≥ 1
// need a routed Fabric topology with loss-free trunks.
func DimShards(counts ...int) (Dimension, error) {
	d := Dimension{Name: "shards"}
	for _, n := range counts {
		n := n
		if n < 0 {
			return Dimension{}, fmt.Errorf("sweep: negative shard count %d", n)
		}
		d.Values = append(d.Values, Value{
			Label: fmt.Sprintf("%d", n),
			Apply: func(sc *scenario.Scenario) error {
				sc.Shards = n
				return nil
			},
		})
	}
	return d, nil
}

// DimFaults returns a dimension sweeping named fault presets (see
// faults.PresetNames; "none" is the fault-free control). Preset names
// are validated eagerly; the preset itself is rendered at apply time
// against each point's own topology, so the axis composes with
// population-size and topology dimensions.
func DimFaults(names ...string) (Dimension, error) {
	d := Dimension{Name: "faults"}
	for _, name := range names {
		name := name
		if _, err := faults.Preset(name, nil); err != nil {
			return Dimension{}, fmt.Errorf("sweep: %w", err)
		}
		d.Values = append(d.Values, Value{
			Label: name,
			Apply: func(sc *scenario.Scenario) error {
				plan, err := faults.Preset(name, sc.RelayIDs())
				if err != nil {
					return err
				}
				sc.Faults = plan
				return nil
			},
		})
	}
	return d, nil
}

// DimSizeDist returns a dimension sweeping the per-circuit
// transfer-size distribution (workload.ParseSizeDist forms, e.g.
// "fixed:500000", "lognormal:500000:0.8", "pareto:100000:1.2:10000000").
// Specs are validated eagerly; samples are drawn per point from the
// scenario seed's dedicated stream, so the axis is deterministic for
// any worker count and the fixed kind is byte-identical to a scalar
// TransferSize base.
func DimSizeDist(specs ...string) (Dimension, error) {
	d := Dimension{Name: "size_dist"}
	for _, s := range specs {
		dist, err := workload.ParseSizeDist(s)
		if err != nil {
			return Dimension{}, fmt.Errorf("sweep: %w", err)
		}
		d.Values = append(d.Values, Value{
			Label: dist.Label(),
			Apply: func(sc *scenario.Scenario) error {
				dd := dist
				sc.Circuits.SizeDist = &dd
				sc.Circuits.SizeMix = nil
				sc.Circuits.TransferSize = 0
				return nil
			},
		})
	}
	return d, nil
}

// Seeds returns a dimension re-running every other coordinate under
// independent base seeds — an explicit-replication axis whose points
// stay separately addressable in the output (unlike
// Scenario.Replications, which pools into one distribution).
func Seeds(seeds ...int64) Dimension {
	d := Dimension{Name: "seed"}
	for _, s := range seeds {
		s := s
		d.Values = append(d.Values, Value{
			Label: fmt.Sprintf("%d", s),
			Apply: func(sc *scenario.Scenario) error {
				sc.Seed = s
				return nil
			},
		})
	}
	return d
}
