// Package sweep is the declarative parameter-sweep engine: a Sweep
// takes a base scenario.Scenario plus a set of named Dimensions — axes
// that mutate the scenario (start-up policy, γ, circuit count, transfer
// size, population size, trunk bandwidth, churn rate, or any custom
// mutation) — expands their cross product into grid points, executes
// every point on the parallel scenario Runner, and streams per-point
// aggregates into pluggable Sinks (CSV, JSON lines, an in-memory Table
// with marginal and best-arm summaries).
//
// Every fixed ablation of package experiments is a point query on this
// engine: a 1-D γ sweep over the trace scenario reproduces
// AblationGamma's numbers exactly (TestGammaSweepReproducesAblation
// pins it), and grids the fixed ablations cannot express — γ ×
// bottleneck bandwidth × hop count — are one literal away.
//
// Determinism is inherited from the Runner and extended across the
// grid: every point clones the base scenario (so mutators never alias),
// keeps the base seed (so outcome differences are attributable to the
// dimensions alone, exactly as arms within one scenario share a seed),
// and results are emitted to sinks in grid order regardless of which
// worker finishes first — a sweep's output bytes are identical for any
// worker count, and an interrupted sweep's output is a valid prefix
// that Engine.Resume can continue after.
package sweep

import (
	"fmt"
	"sort"
	"strings"

	"circuitstart/internal/scenario"
	"circuitstart/internal/sim"
)

// Mutator applies one dimension value to a (cloned) scenario. It may
// rewrite anything — transport options, topology, workload, churn — and
// returns an error when the base scenario cannot carry the mutation
// (e.g. a population-size axis on an explicit topology).
type Mutator func(*scenario.Scenario) error

// Value is one point on a dimension's axis: a label (the coordinate
// rendered in output rows) and the mutation realizing it.
type Value struct {
	Label string
	Apply Mutator
}

// Dimension is one named axis of a sweep grid.
type Dimension struct {
	Name   string
	Values []Value
}

// Sweep declares a parameter grid over a base scenario.
type Sweep struct {
	// Name labels the sweep in sink metadata.
	Name string
	// Base is the scenario every grid point starts from. Each point
	// deep-clones it and applies one value per dimension, in dimension
	// order — later dimensions see earlier mutations.
	Base scenario.Scenario
	// Dimensions are the grid axes. The cross product is expanded in
	// row-major order: the last dimension varies fastest.
	Dimensions []Dimension
	// Sample, when positive and smaller than the full grid, caps the
	// sweep to that many points, drawn without replacement from a
	// seed-derived stream and kept in grid order — a cheap way to
	// explore a large surface before committing to the full product.
	Sample int
	// SampleSeed drives the sampling draw (0 = the base scenario seed).
	SampleSeed int64
}

// Point is one expanded grid point: its index in the full grid, its
// coordinates (one value label per dimension) and the mutated scenario.
type Point struct {
	// Index is the point's position in the full row-major grid — stable
	// under sampling and resumption, so output rows from partial sweeps
	// align with the full grid.
	Index int
	// Coords holds one value label per dimension, in dimension order.
	Coords []string
	// Scenario is the base clone with the point's mutations applied.
	Scenario scenario.Scenario
}

// validate checks the grid declaration (the base scenario itself is
// validated by the Runner when each point executes).
func (s *Sweep) validate() error {
	if len(s.Dimensions) == 0 {
		return fmt.Errorf("sweep: no dimensions")
	}
	seen := make(map[string]bool, len(s.Dimensions))
	for i, d := range s.Dimensions {
		if d.Name == "" {
			return fmt.Errorf("sweep: dimension %d has no name", i)
		}
		if seen[d.Name] {
			return fmt.Errorf("sweep: duplicate dimension %q", d.Name)
		}
		seen[d.Name] = true
		if len(d.Values) == 0 {
			return fmt.Errorf("sweep: dimension %q has no values", d.Name)
		}
		labels := make(map[string]bool, len(d.Values))
		for j, v := range d.Values {
			if v.Label == "" {
				return fmt.Errorf("sweep: dimension %q value %d has no label", d.Name, j)
			}
			if labels[v.Label] {
				return fmt.Errorf("sweep: dimension %q has duplicate label %q", d.Name, v.Label)
			}
			labels[v.Label] = true
			if v.Apply == nil {
				return fmt.Errorf("sweep: dimension %q value %q has no mutator", d.Name, v.Label)
			}
		}
	}
	if s.Sample < 0 {
		return fmt.Errorf("sweep: negative sample cap")
	}
	return nil
}

// Size returns the full grid size (the product of the dimension
// lengths), before any sampling cap.
func (s *Sweep) Size() int {
	if len(s.Dimensions) == 0 {
		return 0
	}
	n := 1
	for _, d := range s.Dimensions {
		n *= len(d.Values)
	}
	return n
}

// DimensionNames returns the axis names in declaration order.
func (s *Sweep) DimensionNames() []string {
	out := make([]string, len(s.Dimensions))
	for i, d := range s.Dimensions {
		out[i] = d.Name
	}
	return out
}

// indices returns the grid indices the sweep executes, in ascending
// order: the full grid, or a seeded sample of Sample points.
func (s *Sweep) indices() []int {
	size := s.Size()
	idx := make([]int, size)
	for i := range idx {
		idx[i] = i
	}
	if s.Sample == 0 || s.Sample >= size {
		return idx
	}
	seed := s.SampleSeed
	if seed == 0 {
		seed = s.Base.Seed
	}
	rng := sim.NewRNG(seed, "sweep-sample")
	// Partial Fisher–Yates: the first Sample slots are a uniform draw
	// without replacement; sorting restores grid order.
	for i := 0; i < s.Sample; i++ {
		j := i + int(rng.Int63n(int64(size-i)))
		idx[i], idx[j] = idx[j], idx[i]
	}
	idx = idx[:s.Sample]
	sort.Ints(idx)
	return idx
}

// point expands grid index i into a Point: clone the base, apply one
// value per dimension (row-major decode, last dimension fastest).
func (s *Sweep) point(i int) (Point, error) {
	pt := Point{Index: i, Coords: make([]string, len(s.Dimensions))}
	// Decode right to left so the last dimension varies fastest.
	vals := make([]Value, len(s.Dimensions))
	rem := i
	for d := len(s.Dimensions) - 1; d >= 0; d-- {
		n := len(s.Dimensions[d].Values)
		vals[d] = s.Dimensions[d].Values[rem%n]
		pt.Coords[d] = vals[d].Label
		rem /= n
	}
	sc := s.Base.Clone()
	for d, v := range vals {
		if err := v.Apply(&sc); err != nil {
			return Point{}, fmt.Errorf("sweep: point %d (%s): dimension %q value %q: %w",
				i, strings.Join(pt.Coords, " "), s.Dimensions[d].Name, v.Label, err)
		}
	}
	if s.Name != "" {
		sc.Name = fmt.Sprintf("%s[%s]", s.Name, strings.Join(pt.Coords, " "))
	}
	pt.Scenario = sc
	return pt, nil
}

// Points expands the sweep into its executable grid points (the full
// cross product, or the seeded sample), in grid order.
func (s *Sweep) Points() ([]Point, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	idx := s.indices()
	out := make([]Point, len(idx))
	for i, gi := range idx {
		pt, err := s.point(gi)
		if err != nil {
			return nil, err
		}
		out[i] = pt
	}
	return out, nil
}
