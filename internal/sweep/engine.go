package sweep

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"circuitstart/internal/scenario"
)

// ErrStopped is returned by Engine.Run when the Stop hook cancelled the
// sweep. Points emitted before the stop reached every sink normally, so
// the partial output is a valid grid-order prefix.
var ErrStopped = errors.New("sweep: stopped")

// Engine executes a Sweep: grid points fan out across a worker pool,
// and completed points are emitted to the sinks in grid order — never
// in completion order — so sweep output bytes are identical for any
// Workers value.
type Engine struct {
	// Workers is the number of grid points executing concurrently
	// (≤ 0 = runtime.NumCPU()).
	Workers int
	// PointWorkers sizes each point's scenario Runner pool (≤ 0 = 1).
	// The default keeps total parallelism at Workers; raise it for
	// sweeps whose points carry many trials (arms × replications) but
	// few grid points.
	PointWorkers int
	// Resume skips grid points with Index < Resume. Because emission
	// order equals grid order, an interrupted sweep's output is a valid
	// prefix; re-running with Resume set to the first missing index
	// (and appending to the same file) completes it without re-paying
	// the finished points.
	Resume int
	// Lookup, when set, is consulted once per grid point before any
	// work is scheduled for it. Returning (arms, true) replays the
	// point from those cached per-arm rows instead of running it — the
	// hash-keyed generalization of Resume: any subset of the grid can
	// be served from a prior run, not just an index prefix. Replayed
	// points reach the sinks with PointResult.Result == nil (stock
	// sinks and Table never read it). Lookup may be called from
	// multiple worker goroutines concurrently.
	Lookup func(Point) ([]ArmPoint, bool)
	// Stop, when set, is polled before each point is started. Once it
	// returns true no further points run and Run returns ErrStopped;
	// points already emitted reached every sink in grid order. Stop may
	// be called from multiple worker goroutines concurrently.
	Stop func() bool
}

// Run expands the sweep and executes every point, streaming each
// result to every sink in grid order. It always aggregates into an
// in-memory Table (returned even when a mid-sweep error cuts the run
// short, with the points that completed before the failure).
func (e Engine) Run(s Sweep, sinks ...Sink) (*Table, error) {
	pts, err := s.Points()
	if err != nil {
		return nil, err
	}
	if e.Resume > 0 {
		cut := 0
		for cut < len(pts) && pts[cut].Index < e.Resume {
			cut++
		}
		pts = pts[cut:]
	}

	tbl := NewTable()
	all := append(append([]Sink{}, sinks...), tbl)
	meta := Meta{Name: s.Name, Dimensions: s.DimensionNames(), GridSize: s.Size(), Points: len(pts)}
	for i, sk := range all {
		if err := sk.Begin(meta); err != nil {
			// Honour the Sink contract for the sinks already begun:
			// they get their Flush even though the sweep never ran.
			for _, begun := range all[:i] {
				begun.Flush()
			}
			return tbl, err
		}
	}

	workers := e.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(pts) {
		workers = len(pts)
	}
	pointWorkers := e.PointWorkers
	if pointWorkers <= 0 {
		pointWorkers = 1
	}

	type slot struct {
		res *PointResult
		err error
	}
	results := make([]slot, len(pts))
	var next, failed, stopped atomic.Int64
	var wg sync.WaitGroup
	done := make(chan int, len(pts))
	// Claim tokens bound how far workers run ahead of the emit cursor:
	// a completed point parks its full Result until every predecessor
	// has been emitted, so without a bound one slow early point would
	// buffer the rest of the grid in memory. 2× workers keeps the pool
	// busy while capping parked results at a constant multiple.
	claims := make(chan struct{}, 2*workers)
	for i := 0; i < cap(claims); i++ {
		claims <- struct{}{}
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				<-claims
				i := int(next.Add(1)) - 1
				if i >= len(pts) {
					claims <- struct{}{}
					return
				}
				if e.Stop != nil && e.Stop() {
					stopped.Store(1)
					failed.Store(1)
				}
				if failed.Load() != 0 {
					// A prior point failed (or the sweep was stopped):
					// report the remaining points as skipped without
					// paying for them.
					done <- i
					continue
				}
				if e.Lookup != nil {
					if arms, ok := e.Lookup(pts[i]); ok {
						results[i] = slot{res: &PointResult{Point: pts[i], Arms: arms}}
						done <- i
						continue
					}
				}
				res, err := scenario.Runner{Workers: pointWorkers}.Run(pts[i].Scenario)
				if err != nil {
					results[i] = slot{err: fmt.Errorf("sweep: point %d (%v): %w", pts[i].Index, pts[i].Coords, err)}
					failed.Store(1)
				} else {
					results[i] = slot{res: &PointResult{Point: pts[i], Arms: armPoints(res), Result: res}}
				}
				done <- i
			}
		}()
	}
	go func() { wg.Wait(); close(done) }()

	// Emit strictly in grid order: results may complete out of order,
	// so each finished index parks in `ready` until every predecessor
	// has been emitted. Sinks run on this goroutine only.
	ready := make(map[int]bool, len(pts))
	emit := 0
	var firstErr error
	for i := range done {
		ready[i] = true
		for ready[emit] {
			sl := results[emit]
			if sl.err != nil && firstErr == nil {
				firstErr = sl.err
			}
			if sl.res != nil && firstErr == nil {
				for _, sk := range all {
					if err := sk.Point(sl.res); err != nil {
						firstErr = fmt.Errorf("sweep: sink: %w", err)
						failed.Store(1)
						break
					}
				}
			}
			results[emit] = slot{}
			delete(ready, emit)
			emit++
			claims <- struct{}{}
		}
	}
	for _, sk := range all {
		if err := sk.Flush(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("sweep: sink: %w", err)
		}
	}
	if firstErr == nil && stopped.Load() != 0 {
		firstErr = ErrStopped
	}
	return tbl, firstErr
}

// Run executes the sweep with a default Engine (one point per CPU).
func Run(s Sweep, sinks ...Sink) (*Table, error) { return Engine{}.Run(s, sinks...) }
