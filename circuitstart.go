// Package circuitstart is a from-scratch reproduction of
//
//	Döpmann & Tschorsch, "CircuitStart: A Slow Start For Multi-Hop
//	Anonymity Systems", SIGCOMM 2018 Posters and Demos.
//
// It provides a deterministic discrete-event simulation of a Tor-like
// anonymity overlay — fixed-size cells, layered onion encryption,
// bandwidth-weighted path selection, and a per-hop window-based
// transport in the style of BackTap (NSDI'16) — together with the
// paper's contribution: the CircuitStart start-up scheme, which ramps a
// circuit's congestion windows with feedback-clocked doubling rounds
// and compensates overshooting by measuring the successor's drain rate.
//
// Quick start:
//
//	n := circuitstart.NewNetwork(42)
//	n.MustAddRelay("r1", circuitstart.Symmetric(circuitstart.Mbps(8), 5*time.Millisecond, 0))
//	c := n.MustBuildCircuit(circuitstart.CircuitSpec{ ... })
//	c.Transfer(1*circuitstart.Megabyte, nil)
//	n.Run()
//	ttlb, _ := c.TTLB()
//
// The experiments sub-API (Fig1CwndTrace, Fig1DownloadCDF, the
// Ablation* functions) regenerates every figure of the paper; see
// EXPERIMENTS.md for the reproduction report and DESIGN.md for the
// system inventory.
//
// # Declarative scenarios
//
// Beyond the fixed figure entry points, the Scenario/Runner API
// describes an experiment as plain data — topology (explicit relays or
// a generated Tor-like population), circuits (count, paths, transfer
// size and direction, arrival process), one policy arm per transport
// configuration, and instrumentation — and executes it on a multi-core
// worker pool:
//
//	pop := circuitstart.DefaultRelayParams(40)
//	res, _ := circuitstart.Runner{Workers: 8}.Run(circuitstart.Scenario{
//		Seed:     42,
//		Topology: circuitstart.Topology{Population: &pop},
//		Circuits: circuitstart.CircuitSet{Count: 50, TransferSize: 500 * circuitstart.Kilobyte},
//		Arms: []circuitstart.Arm{
//			{Name: "with", Transport: circuitstart.TransportOptions{}},
//			{Name: "without", Transport: circuitstart.TransportOptions{Policy: circuitstart.PolicyBackTap}},
//		},
//		Horizon: 600 * circuitstart.Second,
//	})
//
// Each (arm, replication) trial runs on its own Network with a
// seed-derived substream, so a Result is bit-identical regardless of
// the worker count or trial completion order. The figure entry points
// are thin adapters over this API; examples/scenarios shows a custom
// multi-arm sweep, and 'circuitsim scenario' drives one from the
// command line.
//
// # Circuit lifecycle and churn
//
// Circuits are dynamic entities: a built Circuit can be torn down with
// Teardown, which removes its per-hop state from every relay on the
// path and releases timers and untransmitted cells back to their pools
// — so long-running simulations do not accumulate dead circuit state.
// Relays can fail and recover mid-run (blackholing traffic while
// down). In a Scenario, the same dynamics are declared as data:
// CircuitEvents adds Poisson arrivals of new downloads over fresh
// circuits and teardown of completed ones, RelayEvents schedules relay
// failures/recoveries, and an Arm with Rebuild set rebuilds affected
// circuits over fresh consensus-sampled paths — paying a full startup
// again, the regime where the paper's scheme matters most
// (AblationChurn measures exactly that; see 'circuitsim ablation -name
// churn' and examples/churn).
//
// # Parameter sweeps
//
// Where a Scenario describes one experiment, a Sweep describes a whole
// parameter space: a base Scenario crossed with named Dimensions (γ,
// policy, transfer size, circuit count, population size, trunk
// bandwidth, churn rate, or any custom mutation), executed point by
// point on the parallel runner and streamed into sinks:
//
// # Relay resources and scheduling
//
// Relays are finite machines, not infinite sinks: a RelayConfig on an
// Arm (or on Network.ConfigureRelays directly) gives every relay a
// resource manager — circuit and buffered-memory caps with a
// deterministic admission/kill policy (reject-new, kill-oldest,
// kill-heaviest) — and a pluggable uplink scheduler: FIFO, or the
// Tor-style EWMA discipline that prioritises quiet (interactive)
// circuits over heavy (bulk) ones. Both are pure data threaded through
// Scenario arms and sweep dimensions (SweepSchedulers, SweepRelayCaps);
// the zero RelayConfig is the byte-identical unlimited/FIFO default.
// Results surface Jain's fairness index over per-circuit TTLB, kill and
// rejection counters, and per-relay memory high-water marks.
// AblationOverload crams an interactive-vs-bulk mix onto a few capped
// relays behind a saturated trunk and runs the CircuitStart-vs-slow-
// start × FIFO-vs-EWMA grid ('circuitsim ablation -name overload' and
// examples/overload).
//
//	tbl, _ := circuitstart.RunSweep(circuitstart.Sweep{
//		Name: "gamma-surface",
//		Base: base, // any Scenario
//		Dimensions: []circuitstart.Dimension{
//			circuitstart.SweepGamma(1, 4, 16),
//			circuitstart.SweepTransferSizes(100*circuitstart.Kilobyte, circuitstart.Megabyte),
//		},
//	}, circuitstart.NewSweepCSVSink(f))
//	rows, _ := tbl.Marginal("gamma")
//
// Every point clones the base (mutators never alias) and keeps its
// seed, so differences across the grid are attributable to the
// dimensions alone, and results are emitted in grid order — output
// bytes are identical for any worker count. The fixed ablations are
// point queries on this engine ('circuitsim sweep' runs grids from the
// command line; examples/sweep sweeps a gamma × bandwidth × hops
// surface no fixed ablation can express).
//
// # Fault injection and recovery
//
// A FaultPlan on a Scenario declares adverse conditions as data:
// Gilbert–Elliott burst loss and delay jitter on relay access links,
// link flaps, backbone trunk partitions, and relay degradation (hang
// or slowdown). Every fault source draws from its own named RNG
// stream, so an empty plan leaves seeded outputs byte-identical and a
// faulted run stays deterministic for any worker count. FaultRecovery
// arms endpoint stall detection: a download with no progress for
// StallRTOs retransmission timeouts tears down its circuit and
// rebuilds on a path excluding the suspect relay, under capped
// exponential backoff and a retry budget. Results surface per-arm
// ResilienceStats — stalls, recoveries, the time-to-recovery
// distribution, availability and goodput-under-fault — and
// AblationFaults compares startup policies under an identical fault
// schedule ('circuitsim ablation -name faults' and examples/faults;
// 'circuitsim scenario/sweep -faults' applies presets or JSON specs).
//
// # Sweep service and spec API
//
// Everything submittable to the sweep engine has one versioned JSON
// wire form (SpecFile, schema version 1): a base scenario, dimension
// axes, sampling — validated eagerly with unknown fields rejected and
// the offending entry named. ParseSpec and MarshalSpec are a canonical
// codec (Marshal ∘ Parse is a fixed point, so specs diff and hash
// stably), SpecFromScenario renders a population Scenario back into a
// spec, and the same schema drives three front doors: `circuitsim
// sweep` flags, `circuitsim sweep -spec` files, and the `circuitsim
// serve` daemon (ServeSweeps / NewSweepServer), whose HTTP API streams
// per-grid-point rows live with bytes identical to the batch sinks and
// caches completed points by content hash — resubmitting an
// overlapping grid replays the shared points byte-identically and
// computes only the delta. Transfer-size workloads extend beyond a
// scalar with SizeDist (fixed, lognormal, bounded-Pareto; SweepSizeDists
// sweeps distributions as a grid axis), seeded deterministically from
// the scenario seed. See DESIGN.md's "Sweep service & spec schema".
package circuitstart

import (
	"circuitstart/internal/core"
	"circuitstart/internal/experiments"
	"circuitstart/internal/faults"
	"circuitstart/internal/metrics"
	"circuitstart/internal/model"
	"circuitstart/internal/netem"
	"circuitstart/internal/relay"
	"circuitstart/internal/resource"
	"circuitstart/internal/scenario"
	"circuitstart/internal/serve"
	"circuitstart/internal/sim"
	"circuitstart/internal/spec"
	"circuitstart/internal/sweep"
	"circuitstart/internal/transport"
	"circuitstart/internal/units"
	"circuitstart/internal/workload"
)

// Core simulation types.
type (
	// Network is an overlay on a topology fabric (star by default):
	// attach relays, build circuits.
	Network = core.Network
	// Circuit is an onion-encrypted multi-hop path with per-hop
	// window-based transport.
	Circuit = core.Circuit
	// CircuitSpec describes one circuit to build.
	CircuitSpec = core.CircuitSpec
	// TransportOptions selects the start-up policy and congestion
	// parameters for a circuit's hops.
	TransportOptions = core.TransportOptions
	// NodeID names a node in the overlay.
	NodeID = netem.NodeID
	// AccessConfig describes a node's attachment to the fabric.
	AccessConfig = netem.AccessConfig
	// Fabric is the pluggable topology substrate.
	Fabric = netem.Fabric
	// SwitchID names a backbone switch of a routed fabric.
	SwitchID = netem.SwitchID
	// GraphSpec is the data description of a routed backbone
	// (switches, trunks, node homes) for Topology.Fabric.
	GraphSpec = netem.GraphSpec
	// TrunkSpec declares one backbone trunk of a GraphSpec.
	TrunkSpec = netem.TrunkSpec
	// TrunkConfig describes a trunk's per-direction link parameters.
	TrunkConfig = netem.TrunkConfig
	// BackboneParams shapes a generated backbone population
	// (N relays behind K trunked switches).
	BackboneParams = workload.BackboneParams
	// DataSize is an amount of data in bytes.
	DataSize = units.DataSize
	// DataRate is a transmission rate in bits per second.
	DataRate = units.DataRate
	// Time is an instant in virtual time.
	Time = sim.Time
	// Series is a time series of measurements (e.g. cwnd over time).
	Series = metrics.Series
	// Distribution accumulates samples and answers quantile queries.
	Distribution = metrics.Distribution
	// Path is the analytic model of a circuit's node sequence.
	Path = model.Path
)

// Experiment types (one per figure/ablation of the paper).
type (
	// CwndTraceParams configures a Figure-1 upper-panel run.
	CwndTraceParams = experiments.CwndTraceParams
	// CwndTraceResult is one single-circuit cwnd trace.
	CwndTraceResult = experiments.CwndTraceResult
	// CDFParams configures the Figure-1 lower-panel aggregate run.
	CDFParams = experiments.CDFParams
	// CDFResult is the aggregate download-time comparison.
	CDFResult = experiments.CDFResult
	// ScenarioParams shapes the synthetic Tor-like workload.
	ScenarioParams = workload.ScenarioParams
	// DynamicRestartParams configures the capacity-step extension run.
	DynamicRestartParams = experiments.DynamicRestartParams
	// SharedBottleneckParams configures the shared-trunk ablation.
	SharedBottleneckParams = experiments.SharedBottleneckParams
	// ChurnParams configures the circuit-churn ablation.
	ChurnParams = experiments.ChurnParams
	// OverloadParams configures the relay-overload ablation.
	OverloadParams = experiments.OverloadParams
	// FaultsParams configures the resilience ablation (CircuitStart vs
	// slow start under burst loss, a relay hang and a trunk flap).
	FaultsParams = experiments.FaultsParams
	// ScaleParams configures the scale ablation: one whole-network
	// churn trial at a consensus-realistic relay count, timed at each
	// requested shard count over byte-identical simulations.
	ScaleParams = experiments.ScaleParams
	// ScaleResult is the scale ablation's speedup table.
	ScaleResult = experiments.ScaleResult
)

// Relay resource management and scheduling. See the package comment's
// "Relay resources and scheduling" section.
type (
	// RelayConfig selects a relay's uplink scheduler and resource
	// limits; the zero value is the byte-identical unlimited/FIFO
	// default.
	RelayConfig = relay.Config
	// ResourceLimits caps a relay's circuits and buffered memory and
	// names the policy applied at the cap.
	ResourceLimits = resource.Limits
	// ResourceStats pools a relay population's admission, rejection,
	// kill and memory high-water counters.
	ResourceStats = resource.Stats
	// KillPolicy decides what happens when a resource limit is hit.
	KillPolicy = resource.Policy
)

// Admission/kill policies for ResourceLimits.Policy.
const (
	// KillRejectNew refuses new circuits at the circuit cap.
	KillRejectNew = resource.RejectNew
	// KillOldest evicts the longest-admitted circuit to make room.
	KillOldest = resource.KillOldest
	// KillHeaviest evicts the circuit holding the most buffered cells.
	KillHeaviest = resource.KillHeaviest
)

// Declarative experiment API: a Scenario describes an experiment as
// data, a Runner executes its trials on a worker pool. See the package
// comment's "Declarative scenarios" section.
type (
	// Scenario declaratively describes one experiment.
	Scenario = scenario.Scenario
	// Topology is a scenario's relay population (explicit or generated).
	Topology = scenario.Topology
	// RelaySpec pins one explicit relay of a Topology.
	RelaySpec = scenario.RelaySpec
	// CircuitSet describes a scenario's circuits and workload.
	CircuitSet = scenario.CircuitSet
	// Arrival describes when each circuit's transfer begins.
	Arrival = scenario.Arrival
	// Arm is one policy configuration to run a scenario under.
	Arm = scenario.Arm
	// Probes selects per-circuit instrumentation.
	Probes = scenario.Probes
	// LinkEvent schedules a mid-run capacity change on a relay's
	// access links or on a backbone trunk.
	LinkEvent = scenario.LinkEvent
	// CircuitEvents configures circuit churn: Poisson arrivals of new
	// downloads over fresh circuits, teardown of completed circuits,
	// and scheduled teardowns of initial circuits.
	CircuitEvents = scenario.CircuitEvents
	// TeardownEvent schedules the teardown of one initial circuit.
	TeardownEvent = scenario.TeardownEvent
	// RelayEvent schedules a relay failure or recovery.
	RelayEvent = scenario.RelayEvent
	// ChurnStats aggregates an arm's circuit-lifecycle activity.
	ChurnStats = scenario.ChurnStats
	// FaultPlan declares a scenario's fault schedule as data: burst
	// loss, jitter, link flaps, trunk partitions, relay degradation,
	// and the endpoint recovery policy. The zero value injects nothing
	// and keeps seeded outputs byte-identical.
	FaultPlan = faults.Plan
	// FaultRecovery configures endpoint stall detection and circuit
	// rebuild (retry budget, backoff bounds).
	FaultRecovery = faults.Recovery
	// ResilienceStats aggregates an arm's fault-recovery activity:
	// stalls, recoveries, the time-to-recovery distribution, retries,
	// abandons, availability and goodput-under-fault.
	ResilienceStats = scenario.ResilienceStats
	// NetStats aggregates fabric drop counters and trunk stats per arm.
	NetStats = scenario.NetStats
	// TrunkStat is one trunk link's pooled counters.
	TrunkStat = scenario.TrunkStat
	// Runner executes a Scenario across a worker pool.
	Runner = scenario.Runner
	// ScenarioResult is a Runner's aggregated outcome.
	ScenarioResult = scenario.Result
	// ArmResult aggregates one arm across all replications.
	ArmResult = scenario.ArmResult
	// CircuitOutcome is one circuit's outcome in one trial.
	CircuitOutcome = scenario.CircuitOutcome
	// RelayParams shapes a generated relay population.
	RelayParams = workload.RelayParams
)

// Parameter-sweep engine: a Sweep crosses a base Scenario with named
// Dimensions and executes every grid point on the parallel runner,
// streaming per-point aggregates into sinks. See the package sweep
// documentation; examples/sweep shows a gamma × bandwidth × hops
// surface, and 'circuitsim sweep' drives grids from the command line.
type (
	// Sweep declares a parameter grid over a base Scenario.
	Sweep = sweep.Sweep
	// Dimension is one named axis of a sweep grid.
	Dimension = sweep.Dimension
	// DimensionValue is one labelled point on a dimension's axis.
	DimensionValue = sweep.Value
	// SweepEngine executes a Sweep across a worker pool, emitting
	// results in grid order for any worker count.
	SweepEngine = sweep.Engine
	// SweepPoint is one expanded grid point.
	SweepPoint = sweep.Point
	// SweepPointResult is one executed grid point with its aggregates.
	SweepPointResult = sweep.PointResult
	// SweepArmPoint is one arm's compact aggregate at one grid point.
	SweepArmPoint = sweep.ArmPoint
	// SweepSink consumes a sweep's results as an ordered stream.
	SweepSink = sweep.Sink
	// SweepTable is the in-memory sink with marginal and best-arm
	// summaries.
	SweepTable = sweep.Table
)

// Sweep dimension constructors and sinks.
var (
	// RunSweep executes a Sweep with a default engine (one grid point
	// per CPU).
	RunSweep = sweep.Run
	// SweepCustom builds a dimension from explicit labelled mutators.
	SweepCustom = sweep.Custom
	// SweepGamma sweeps the start-up exit threshold γ on every arm.
	SweepGamma = sweep.Gamma
	// SweepPolicies sweeps the start-up policy on every arm.
	SweepPolicies = sweep.Policies
	// SweepCircuits sweeps the concurrent circuit count.
	SweepCircuits = sweep.Circuits
	// SweepTransferSizes sweeps the per-circuit transfer size.
	SweepTransferSizes = sweep.TransferSizes
	// SweepHops sweeps the sampled path length (generated populations).
	SweepHops = sweep.Hops
	// SweepPopulationSizes sweeps the generated relay population size.
	SweepPopulationSizes = sweep.PopulationSizes
	// SweepPopulationBandwidths sweeps the population's median rate.
	SweepPopulationBandwidths = sweep.PopulationBandwidths
	// SweepRelayRates sweeps one explicit relay's access rate.
	SweepRelayRates = sweep.RelayRates
	// SweepTrunkRates sweeps every backbone trunk's rate.
	SweepTrunkRates = sweep.TrunkRates
	// SweepTrunkDelays sweeps every backbone trunk's delay.
	SweepTrunkDelays = sweep.TrunkDelays
	// SweepChurnRates sweeps the circuit-churn arrival rate.
	SweepChurnRates = sweep.ChurnRates
	// SweepSchedulers sweeps the relay uplink scheduler on every arm.
	SweepSchedulers = sweep.DimScheduler
	// SweepRelayCaps sweeps the per-relay resource limits on every arm.
	SweepRelayCaps = sweep.DimRelayCaps
	// SweepSeeds re-runs the grid under independent base seeds.
	SweepSeeds = sweep.Seeds
	// SweepTrainSizes sweeps the cell-train coalescing cap.
	SweepTrainSizes = sweep.DimTrainSize
	// SweepShards sweeps the trial-internal shard count on the
	// conservative-lookahead parallel engine (byte-identical results,
	// wall-clock only).
	SweepShards = sweep.DimShards
	// SweepSizeDists sweeps the per-circuit transfer-size distribution
	// ("fixed:N", "lognormal:median:sigma", "pareto:min:alpha:max").
	SweepSizeDists = sweep.DimSizeDist
	// NewSweepCSVSink streams sweep rows as CSV.
	NewSweepCSVSink = sweep.NewCSVSink
	// NewSweepJSONLSink streams sweep rows as JSON lines.
	NewSweepJSONLSink = sweep.NewJSONLSink
)

// ErrSweepStopped is returned by SweepEngine.Run when its Stop hook
// tripped mid-grid: the rows emitted before the stop are a valid
// grid-order prefix.
var ErrSweepStopped = sweep.ErrStopped

// Sweep service daemon and versioned spec schema. See the package
// comment's "Sweep service and spec API" section.
type (
	// SpecFile is the versioned JSON wire form of a sweep submission:
	// base scenario, dimension axes, sampling. `circuitsim sweep -spec`
	// files, the sweep CLI's flag grids, and the serve daemon's POST
	// bodies all parse into it.
	SpecFile = spec.File
	// SpecBase is a spec's base-scenario block.
	SpecBase = spec.Base
	// SpecDim is one dimension block of a spec (exactly one axis set).
	SpecDim = spec.Dim
	// SpecPopulation overrides the generated relay population's shape
	// within a SpecBase.
	SpecPopulation = spec.Population
	// ServeOptions configures the sweep service daemon.
	ServeOptions = serve.Options
	// SweepServer is the daemon state behind the HTTP handler.
	SweepServer = serve.Server
	// SizeDist draws per-circuit transfer sizes from a distribution
	// (fixed, lognormal, bounded-Pareto), seeded by the scenario seed.
	SizeDist = workload.SizeDist
)

var (
	// ParseSpec parses and validates a versioned sweep spec, naming
	// the offending entry on error.
	ParseSpec = spec.Parse
	// MarshalSpec renders a spec in canonical form — the fixed point
	// of Marshal ∘ Parse, safe to diff and hash.
	MarshalSpec = spec.Marshal
	// SpecFromScenario renders a population Scenario back into a spec
	// base, refusing (by name) anything the wire schema cannot express.
	SpecFromScenario = spec.FromScenario
	// NewSweepServer starts a sweep service (job executors + point
	// cache) and returns it; pair with (*Server).Handler and Close.
	NewSweepServer = serve.NewServer
	// ServeSweeps runs the sweep service daemon on an address —
	// `circuitsim serve` in library form.
	ServeSweeps = serve.ListenAndServe
	// ParseSizeDist parses "fixed:N", "lognormal:median:sigma" or
	// "pareto:min:alpha:max" into a SizeDist.
	ParseSizeDist = workload.ParseSizeDist
)

// Backbone trunk meshes for BackboneParams.Kind.
const (
	// BackboneRing joins the switches in a cycle.
	BackboneRing = workload.BackboneRing
	// BackboneLine joins consecutive switches only.
	BackboneLine = workload.BackboneLine
	// BackboneFull trunks every switch pair.
	BackboneFull = workload.BackboneFull
)

// Relay churn actions for RelayEvent.Kind.
const (
	// RelayFail takes a relay out of service (frames blackholed).
	RelayFail = scenario.RelayFail
	// RelayRecover puts a failed relay back in service.
	RelayRecover = scenario.RelayRecover
)

// Arrival processes for CircuitSet.Arrival.Kind.
const (
	// ArriveTogether starts every transfer at t = 0 (default).
	ArriveTogether = scenario.ArriveTogether
	// ArriveUniform staggers starts uniformly in [0, Spread).
	ArriveUniform = scenario.ArriveUniform
	// ArrivePoisson draws inter-arrival gaps from Exp(1/Rate).
	ArrivePoisson = scenario.ArrivePoisson
)

// Constructors and helpers re-exported from the internal packages.
var (
	// NewNetwork creates a star overlay whose randomness derives from
	// seed.
	NewNetwork = core.NewNetwork
	// NewNetworkWithFabric creates an overlay on a custom topology
	// fabric (e.g. a GraphSpec's Build).
	NewNetworkWithFabric = core.NewNetworkWithFabric
	// Symmetric builds an AccessConfig with equal up/down rates.
	Symmetric = netem.Symmetric
	// SymmetricTrunk builds a lossless TrunkConfig.
	SymmetricTrunk = netem.SymmetricTrunk
	// GenerateBackbone renders BackboneParams into a GraphSpec.
	GenerateBackbone = workload.GenerateBackbone
	// DefaultBackboneParams returns n relays behind k ring switches.
	DefaultBackboneParams = workload.DefaultBackboneParams
	// Mbps constructs a DataRate from megabits per second.
	Mbps = units.Mbps
	// Kbps constructs a DataRate from kilobits per second.
	Kbps = units.Kbps
	// BDP returns the bandwidth-delay product of a rate and RTT.
	BDP = units.BDP

	// Fig1CwndTrace regenerates the paper's Figure 1 upper panels.
	Fig1CwndTrace = experiments.Fig1CwndTrace
	// DefaultCwndTraceParams mirrors the paper's trace setup.
	DefaultCwndTraceParams = experiments.DefaultCwndTraceParams
	// Fig1DownloadCDF regenerates the paper's Figure 1 lower panel.
	Fig1DownloadCDF = experiments.Fig1DownloadCDF
	// DefaultCDFParams mirrors the paper's 50-circuit experiment.
	DefaultCDFParams = experiments.DefaultCDFParams
	// AblationGamma sweeps the γ exit threshold.
	AblationGamma = experiments.AblationGamma
	// AblationCompensation compares exit-window strategies.
	AblationCompensation = experiments.AblationCompensation
	// AblationFeedbackClock isolates feedback- vs ACK-clocking.
	AblationFeedbackClock = experiments.AblationFeedbackClock
	// AblationBottleneckPosition sweeps the bottleneck hop.
	AblationBottleneckPosition = experiments.AblationBottleneckPosition
	// AblationConcurrency sweeps concurrent circuit counts.
	AblationConcurrency = experiments.AblationConcurrency
	// ExtensionDynamicRestart runs the capacity-step extension.
	ExtensionDynamicRestart = experiments.ExtensionDynamicRestart
	// AblationSharedBottleneck runs M circuits across one shared
	// backbone trunk, CircuitStart vs slow start.
	AblationSharedBottleneck = experiments.AblationSharedBottleneck
	// DefaultSharedBottleneckParams mirrors the shared-trunk setup.
	DefaultSharedBottleneckParams = experiments.DefaultSharedBottleneckParams
	// AblationChurn compares CircuitStart vs BackTap under circuit
	// churn: Poisson arrivals of short downloads over fresh circuits,
	// per-completion teardown, and relay failures with rebuilds.
	AblationChurn = experiments.AblationChurn
	// DefaultChurnParams mirrors the churn ablation's setup.
	DefaultChurnParams = experiments.DefaultChurnParams
	// AblationOverload runs the relay-overload grid: CircuitStart vs
	// slow start × FIFO vs EWMA scheduling on capped, saturated relays.
	AblationOverload = experiments.AblationOverload
	// DefaultOverloadParams mirrors the overload ablation's setup.
	DefaultOverloadParams = experiments.DefaultOverloadParams
	// AblationFaults runs the resilience comparison: CircuitStart vs
	// slow start under an identical fault schedule with endpoint stall
	// detection and circuit rebuild on both arms.
	AblationFaults = experiments.AblationFaults
	// DefaultFaultsParams mirrors the faults ablation's setup.
	DefaultFaultsParams = experiments.DefaultFaultsParams
	// AblationScale times one whole-network churn trial at each shard
	// count of the conservative-lookahead parallel engine and asserts
	// the results are byte-identical across all of them.
	AblationScale = experiments.AblationScale
	// DefaultScaleParams mirrors the scale ablation's setup.
	DefaultScaleParams = experiments.DefaultScaleParams
	// FaultPreset renders a named fault preset ("burstloss", "flaky",
	// "hang", ...) against a concrete relay list.
	FaultPreset = faults.Preset
	// FaultPresetNames lists the built-in fault preset names.
	FaultPresetNames = faults.PresetNames
	// ParseFaultSpec parses a JSON fault-plan specification.
	ParseFaultSpec = faults.ParseSpec
	// KillPolicyByName maps configuration names ("reject-new",
	// "kill-oldest", "kill-heaviest") to kill policies.
	KillPolicyByName = resource.PolicyByName
	// JainIndex computes Jain's fairness index over a sample set.
	JainIndex = metrics.JainIndex

	// RunScenario executes a Scenario with a default Runner (one
	// worker per CPU).
	RunScenario = scenario.Run
	// DefaultRelayParams returns the Tor-flavoured population used by
	// the paper's aggregate experiment.
	DefaultRelayParams = workload.DefaultRelayParams
)

// Data size units.
const (
	Byte     = units.Byte
	Kilobyte = units.Kilobyte
	Megabyte = units.Megabyte
)

// Virtual time units.
const (
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// Startup policy names accepted by TransportOptions.Policy.
const (
	// PolicyCircuitStart is the paper's scheme (default).
	PolicyCircuitStart = "circuitstart"
	// PolicyBackTap is plain BackTap — the paper's "without
	// CircuitStart" baseline (Vegas only, no ramp-up).
	PolicyBackTap = "backtap"
	// PolicySlowStart is a classic ACK-clocked slow start with halving.
	PolicySlowStart = "slowstart"
	// PolicyCircuitStartHalve is CircuitStart's rounds with the
	// traditional halving exit (compensation ablation).
	PolicyCircuitStartHalve = "circuitstart-halve"
	// PolicySlowStartCompensated is ACK clocking with the measured
	// compensation (clocking ablation).
	PolicySlowStartCompensated = "slowstart-compensated"
	// PolicyFixed pins a static window (Tor-SENDME-like baseline).
	PolicyFixed = "fixed"
)

// DefaultGamma is the paper's start-up exit threshold (γ = 4).
const DefaultGamma = transport.DefaultGamma

// CellSize is the fixed cell size in bytes, as in Tor.
const CellSize = 512
